//! In-process file cache for the live server — the page-cache effect the
//! simulator models, made explicit (extension; NCSA httpd 1.3 relied on
//! the OS buffer cache and re-`read()` per request).
//!
//! Bodies are stored as [`Bytes`], so concurrent responses share one copy
//! with no duplication. Entries are validated against the file's mtime on
//! every hit: an edited document is re-read, never served stale. Each
//! entry also records the canonical request path it was cached under —
//! [`FileId`]s are 64-bit FNV-1a hashes, and on the (rare) collision the
//! path check makes the cache serve the *correct* bytes from disk instead
//! of another document's body.
//!
//! The cache is **lock-striped** for the sharded reactor: the capacity is
//! split across [`DEFAULT_SEGMENTS`] independent segments, each with its
//! own mutex, LRU, and hit/miss/eviction/collision counters. A `FileId`
//! hashes to exactly one segment, so two shards faulting in different
//! documents never contend on one lock, while two shards reading the same
//! hot document still share a single [`Bytes`] body. A single-segment
//! cache ([`FileCache::with_segments`] with `segments = 1`) behaves
//! exactly like the old global-mutex cache, global LRU order included.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use bytes::Bytes;
use parking_lot::Mutex;
use sweb_cluster::{FileId, PageCache};
use sweb_core::CacheDigest;

/// Default stripe count: enough segments that 8 reactor shards rarely
/// collide on a lock, few enough that per-segment capacity shares stay
/// useful (16 MiB default capacity → 2 MiB per segment).
pub const DEFAULT_SEGMENTS: usize = 8;

struct Entry {
    body: Bytes,
    mtime: SystemTime,
    /// Canonical request path this entry was cached under. Verified on
    /// every hit: a differing path under the same `FileId` is a hash
    /// collision, never a valid hit.
    path: String,
}

/// Byte-bounded, mtime-validated, lock-striped LRU cache of document
/// bodies.
pub struct FileCache {
    segments: Box<[Segment]>,
}

/// One independent stripe: its own lock, LRU, and counters.
struct Segment {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
    evictions: AtomicU64,
}

struct Inner {
    lru: PageCache,
    bodies: HashMap<FileId, Entry>,
}

/// Point-in-time counters for one cache segment, for `/sweb-status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Lifetime hits served from this segment.
    pub hits: u64,
    /// Lifetime misses (including invalidations and read errors).
    pub misses: u64,
    /// Lifetime FNV collisions detected in this segment.
    pub collisions: u64,
    /// Lifetime LRU evictions from this segment.
    pub evictions: u64,
    /// Bytes currently resident in this segment.
    pub used: u64,
    /// This segment's capacity share in bytes.
    pub capacity: u64,
}

/// FNV-1a over the canonical request path — the cache's [`FileId`]
/// namespace, shared with the scheduler's home placement and digests.
pub fn key_of(path: &str) -> FileId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    FileId(h)
}

impl FileCache {
    /// A cache holding at most `capacity` bytes of document bodies,
    /// striped across [`DEFAULT_SEGMENTS`] segments.
    pub fn new(capacity: u64) -> Self {
        FileCache::with_segments(capacity, DEFAULT_SEGMENTS)
    }

    /// A cache striped across `segments` stripes (clamped to `1..=64`),
    /// each owning an even share of `capacity`. With one segment this is
    /// the old single-mutex cache, global LRU order included.
    pub fn with_segments(capacity: u64, segments: usize) -> Self {
        let n = segments.clamp(1, 64);
        let share = capacity / n as u64;
        let segments = (0..n)
            .map(|_| Segment {
                inner: Mutex::new(Inner {
                    lru: PageCache::new(share),
                    bodies: HashMap::new(),
                }),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                collisions: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            })
            .collect();
        FileCache { segments }
    }

    /// Number of stripes.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Which stripe `key` lives in. Fibonacci-hash the FileId first so
    /// stripe choice isn't correlated with FNV's low-byte patterns.
    fn segment_of(&self, key: FileId) -> &Segment {
        let mixed = key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.segments[(mixed >> 56) as usize % self.segments.len()]
    }

    /// Lifetime hit count (summed across segments).
    pub fn hits(&self) -> u64 {
        self.segments.iter().map(|s| s.hits.load(Ordering::Relaxed)).sum()
    }

    /// Lifetime miss count, including invalidations and read errors
    /// (summed across segments).
    pub fn misses(&self) -> u64 {
        self.segments.iter().map(|s| s.misses.load(Ordering::Relaxed)).sum()
    }

    /// Lifetime count of FNV `FileId` collisions detected (served
    /// correctly from disk, not from the colliding entry).
    pub fn collisions(&self) -> u64 {
        self.segments.iter().map(|s| s.collisions.load(Ordering::Relaxed)).sum()
    }

    /// Lifetime count of bodies evicted by per-segment LRU pressure.
    pub fn evictions(&self) -> u64 {
        self.segments.iter().map(|s| s.evictions.load(Ordering::Relaxed)).sum()
    }

    /// Bytes currently cached (summed across segments).
    pub fn used(&self) -> u64 {
        self.segments.iter().map(|s| s.inner.lock().lru.used()).sum()
    }

    /// Configured capacity in bytes: the sum of segment shares (at most
    /// the requested capacity; integer division may round each share
    /// down).
    pub fn capacity(&self) -> u64 {
        self.segments.iter().map(|s| s.inner.lock().lru.capacity()).sum()
    }

    /// One segment's byte budget — the "hot segment" share. The reactor
    /// sizes each shard's io_uring registered staging pool off this, so
    /// the pinned pool tracks the per-stripe working set rather than
    /// the whole cache.
    pub fn segment_share(&self) -> u64 {
        self.segments.first().map(|s| s.inner.lock().lru.capacity()).unwrap_or(0)
    }

    /// Per-segment counter snapshot, in stripe order.
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        self.segments
            .iter()
            .map(|s| {
                let inner = s.inner.lock();
                SegmentStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    collisions: s.collisions.load(Ordering::Relaxed),
                    evictions: s.evictions.load(Ordering::Relaxed),
                    used: inner.lru.used(),
                    capacity: inner.lru.capacity(),
                }
            })
            .collect()
    }

    /// Whether `path`'s body is resident right now (no I/O, no LRU touch).
    pub fn resident(&self, path: &str) -> bool {
        let key = key_of(path);
        let inner = self.segment_of(key).inner.lock();
        inner.lru.contains(key) && inner.bodies.get(&key).is_some_and(|e| e.path == path)
    }

    /// Bloom digest of currently-resident [`FileId`]s, for loadd
    /// broadcasts: peers use it to price this node's cache hits.
    pub fn digest(&self) -> CacheDigest {
        let mut d = CacheDigest::default();
        for seg in self.segments.iter() {
            let inner = seg.inner.lock();
            for key in inner.lru.keys() {
                d.insert(key);
            }
        }
        d
    }

    /// Fetch `full` (request path `path` for keying): from memory when the
    /// cached copy's mtime still matches, from disk otherwise. Returns the
    /// body and the file's mtime.
    pub fn read(&self, path: &str, full: &Path) -> std::io::Result<(Bytes, SystemTime)> {
        self.read_keyed(key_of(path), path, full)
    }

    /// [`FileCache::read`] with an explicit key — separated so tests can
    /// force two paths onto one `FileId` (a 64-bit FNV collision is
    /// otherwise impractical to construct).
    pub(crate) fn read_keyed(
        &self,
        key: FileId,
        path: &str,
        full: &Path,
    ) -> std::io::Result<(Bytes, SystemTime)> {
        let seg = self.segment_of(key);
        let mtime = std::fs::metadata(full)?.modified()?;
        let mut collided = false;
        {
            let mut inner = seg.inner.lock();
            if let Some(entry) = inner.bodies.get(&key) {
                if entry.path != path {
                    // Hash collision: this slot holds a different
                    // document. Serving entry.body would be a wrong
                    // response; fall through to a disk read.
                    collided = true;
                } else if entry.mtime == mtime && inner.lru.contains(key) {
                    let body = entry.body.clone();
                    inner.lru.access(key, body.len() as u64); // LRU touch
                    seg.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((body, mtime));
                }
            }
        }
        // Miss, stale, or collision: read outside the lock (large files,
        // slow disks).
        seg.misses.fetch_add(1, Ordering::Relaxed);
        let body = Bytes::from(std::fs::read(full)?);
        if collided {
            // Leave the resident entry in place — two documents fighting
            // over one slot would just thrash it. The loser of the slot is
            // served from disk, correctly, every time.
            seg.collisions.fetch_add(1, Ordering::Relaxed);
            return Ok((body, mtime));
        }
        let mut inner = seg.inner.lock();
        inner.lru.invalidate(key);
        if (body.len() as u64) <= inner.lru.capacity() {
            inner.lru.access(key, body.len() as u64);
            inner.bodies.insert(key, Entry { body: body.clone(), mtime, path: path.to_string() });
        } else {
            inner.bodies.remove(&key);
        }
        // Drop bodies the LRU evicted (PageCache only tracks ids/sizes).
        let lru = &inner.lru;
        let live: std::collections::HashSet<FileId> = lru.keys().collect();
        let before = inner.bodies.len();
        inner.bodies.retain(|k, _| live.contains(k));
        let dropped = before - inner.bodies.len();
        if dropped > 0 {
            seg.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        Ok((body, mtime))
    }
}

impl FileCache {
    /// Look up a resident body by key — no filesystem stat, no disk
    /// fallback. Returns the body, its recorded mtime, and the canonical
    /// path it was cached under. The peer-transfer listener serves FETCH
    /// requests from here so a pull reads the source's RAM, not its disk.
    pub fn get(&self, key: FileId) -> Option<(Bytes, SystemTime, String)> {
        let seg = self.segment_of(key);
        let mut inner = seg.inner.lock();
        if !inner.lru.contains(key) {
            return None;
        }
        let (body, mtime, path) = {
            let entry = inner.bodies.get(&key)?;
            (entry.body.clone(), entry.mtime, entry.path.clone())
        };
        inner.lru.access(key, body.len() as u64); // LRU touch
        seg.hits.fetch_add(1, Ordering::Relaxed);
        Some((body, mtime, path))
    }

    /// Adopt a body that arrived over the peer channel (a pull or a PUSH)
    /// without touching the filesystem. Returns whether the body was
    /// actually cached (an oversized body, or one whose `FileId` slot is
    /// held by a colliding path, is dropped — the next local request will
    /// read it from the shared docroot, correctly). The entry is keyed and
    /// mtime-stamped exactly as a disk read would key it, so later reads
    /// revalidate against the real file and hit.
    pub fn insert(&self, path: &str, body: Bytes, mtime: SystemTime) -> bool {
        let key = key_of(path);
        let seg = self.segment_of(key);
        let mut inner = seg.inner.lock();
        if inner.bodies.get(&key).is_some_and(|e| e.path != path) {
            // Collision: the slot belongs to a different document.
            seg.collisions.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if (body.len() as u64) > inner.lru.capacity() {
            return false;
        }
        inner.lru.invalidate(key);
        inner.lru.access(key, body.len() as u64);
        inner.bodies.insert(key, Entry { body, mtime, path: path.to_string() });
        let lru = &inner.lru;
        let live: std::collections::HashSet<FileId> = lru.keys().collect();
        let before = inner.bodies.len();
        inner.bodies.retain(|k, _| live.contains(k));
        let dropped = before - inner.bodies.len();
        if dropped > 0 {
            seg.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        true
    }
}

impl std::fmt::Debug for FileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileCache")
            .field("segments", &self.segments.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("used", &self.used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("sweb-fc-{tag}-{}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn second_read_hits_memory() {
        let f = tmpfile("hit", b"hello world");
        let cache = FileCache::new(1 << 20);
        let (a, _) = cache.read("/hit", &f).unwrap();
        let (b, _) = cache.read("/hit", &f).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn modification_invalidates() {
        let f = tmpfile("mod", b"version one");
        let cache = FileCache::new(1 << 20);
        let (a, _) = cache.read("/mod", &f).unwrap();
        assert_eq!(&a[..], b"version one");
        // Rewrite with a strictly newer mtime.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&f, b"version two!").unwrap();
        let (b, _) = cache.read("/mod", &f).unwrap();
        assert_eq!(&b[..], b"version two!");
        assert_eq!(cache.misses(), 2, "stale entry must re-read");
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn capacity_bounds_and_eviction() {
        // Single segment: the old global-LRU semantics, verbatim.
        let cache = FileCache::with_segments(100, 1);
        let files: Vec<_> = (0..5)
            .map(|i| tmpfile(&format!("cap{i}"), &[b'x'; 40]))
            .collect();
        for (i, f) in files.iter().enumerate() {
            cache.read(&format!("/cap{i}"), f).unwrap();
            assert!(cache.used() <= 100);
        }
        // Only the two most recent 40-byte bodies fit.
        assert_eq!(cache.used(), 80);
        assert_eq!(cache.evictions(), 3, "three bodies must have been evicted");
        // Oldest entries miss again; newest hits.
        cache.read("/cap4", &files[4]).unwrap();
        assert_eq!(cache.hits(), 1);
        cache.read("/cap0", &files[0]).unwrap();
        assert_eq!(cache.misses(), 6);
        for f in files {
            let _ = std::fs::remove_file(&f);
        }
    }

    #[test]
    fn oversized_files_pass_through_uncached() {
        let f = tmpfile("big", &vec![b'y'; 512]);
        let cache = FileCache::new(100);
        let (a, _) = cache.read("/big", &f).unwrap();
        assert_eq!(a.len(), 512);
        assert_eq!(cache.used(), 0);
        cache.read("/big", &f).unwrap();
        assert_eq!(cache.misses(), 2, "oversized bodies never cache");
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        let cache = FileCache::new(100);
        assert!(cache.read("/gone", Path::new("/definitely/not/here")).is_err());
    }

    #[test]
    fn fileid_collision_serves_correct_bytes_not_the_cached_entry() {
        // Two distinct documents forced onto one FileId — the regression
        // this guards: the cache used to key purely on the hash and would
        // return /alpha's body for /beta.
        let fa = tmpfile("col-a", b"contents of alpha");
        let fb = tmpfile("col-b", b"BETA IS DIFFERENT");
        let cache = FileCache::new(1 << 20);
        let key = FileId(0xdead_beef);
        let (a, _) = cache.read_keyed(key, "/alpha", &fa).unwrap();
        assert_eq!(&a[..], b"contents of alpha");
        // Same key, different path: must come back with /beta's bytes.
        let (b, _) = cache.read_keyed(key, "/beta", &fb).unwrap();
        assert_eq!(&b[..], b"BETA IS DIFFERENT", "collision served the wrong body");
        assert_eq!(cache.collisions(), 1);
        // The resident entry survives and still serves /alpha correctly.
        let (a2, _) = cache.read_keyed(key, "/alpha", &fa).unwrap();
        assert_eq!(&a2[..], b"contents of alpha");
        assert_eq!(cache.hits(), 1);
        // Repeated /beta reads stay correct (and stay collisions).
        let (b2, _) = cache.read_keyed(key, "/beta", &fb).unwrap();
        assert_eq!(&b2[..], b"BETA IS DIFFERENT");
        assert_eq!(cache.collisions(), 2);
        let _ = std::fs::remove_file(&fa);
        let _ = std::fs::remove_file(&fb);
    }

    #[test]
    fn digest_tracks_residency() {
        let f = tmpfile("dig", b"digest me");
        let cache = FileCache::new(1 << 20);
        assert!(cache.digest().is_empty());
        assert!(!cache.resident("/dig"));
        cache.read("/dig", &f).unwrap();
        assert!(cache.resident("/dig"));
        let d = cache.digest();
        assert!(d.contains(key_of("/dig")), "resident file must be in the digest");
        assert!(!cache.resident("/other"));
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn digest_drops_evicted_files() {
        // Single segment so the two 80-byte bodies genuinely compete.
        let cache = FileCache::with_segments(100, 1);
        let fa = tmpfile("ev-a", &[b'a'; 80]);
        let fb = tmpfile("ev-b", &[b'b'; 80]);
        cache.read("/ev-a", &fa).unwrap();
        assert!(cache.digest().contains(key_of("/ev-a")));
        // /ev-b evicts /ev-a (both can't fit in 100 bytes).
        cache.read("/ev-b", &fb).unwrap();
        let d = cache.digest();
        assert!(d.contains(key_of("/ev-b")));
        assert!(!d.contains(key_of("/ev-a")), "evicted file leaked into the digest");
        let _ = std::fs::remove_file(&fa);
        let _ = std::fs::remove_file(&fb);
    }

    #[test]
    fn inserted_bodies_read_back_byte_identical() {
        // A body adopted over the peer channel must come back bit-for-bit
        // through the striped cache — same Bytes, same mtime — and must
        // revalidate against the real file once one exists.
        let cache = FileCache::new(1 << 20);
        let body = Bytes::from_static(b"pushed from a peer");
        let mtime = SystemTime::UNIX_EPOCH + std::time::Duration::new(1_234_567, 890);
        assert!(cache.insert("/pushed", body.clone(), mtime));
        assert!(cache.resident("/pushed"));
        let (got, got_mtime, path) = cache.get(key_of("/pushed")).unwrap();
        assert_eq!(got, body, "peer-inserted body must read back identical");
        assert_eq!(got_mtime, mtime, "mtime must survive adoption exactly");
        assert_eq!(path, "/pushed");
        // A matching on-disk file makes the normal read path hit the entry.
        let f = tmpfile("push", b"pushed from a peer");
        let disk_mtime = std::fs::metadata(&f).unwrap().modified().unwrap();
        assert!(cache.insert("/pushed", body.clone(), disk_mtime));
        let (via_read, _) = cache.read("/pushed", &f).unwrap();
        assert_eq!(via_read, body);
        assert!(cache.hits() >= 2);
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn insert_refuses_oversized_bodies() {
        let cache = FileCache::with_segments(64, 1);
        let t = SystemTime::UNIX_EPOCH;
        assert!(!cache.insert("/huge", Bytes::from(vec![b'z'; 100]), t), "oversized");
        assert_eq!(cache.used(), 0);
        assert!(cache.insert("/small", Bytes::from_static(b"ok"), t));
        // get() on a missing key is a clean None.
        assert!(cache.get(FileId(0x1)).is_none());
    }

    #[test]
    fn capacity_is_split_across_segments() {
        let cache = FileCache::with_segments(800, 8);
        assert_eq!(cache.segment_count(), 8);
        assert_eq!(cache.capacity(), 800);
        let stats = cache.segment_stats();
        assert_eq!(stats.len(), 8);
        assert!(stats.iter().all(|s| s.capacity == 100));
        // Clamping: zero segments becomes one.
        assert_eq!(FileCache::with_segments(100, 0).segment_count(), 1);
    }

    #[test]
    fn concurrent_striped_reads_never_serve_wrong_bytes() {
        // The striped-cache property test: many threads hammering get /
        // insert across segments — including two documents *forced onto
        // one FileId* — must always receive the bytes of the path they
        // asked for, and no segment may ever exceed its capacity share.
        use std::sync::Arc;

        let n_docs = 16usize;
        let body_len = 64usize;
        // Room for roughly half the documents: constant eviction churn.
        let cache = Arc::new(FileCache::with_segments((n_docs * body_len / 2) as u64, 4));
        let files: Vec<(String, std::path::PathBuf, Vec<u8>)> = (0..n_docs)
            .map(|i| {
                let body = vec![b'a' + (i as u8 % 26); body_len];
                (format!("/p{i}"), tmpfile(&format!("prop{i}"), &body), body)
            })
            .collect();
        let files = Arc::new(files);
        // Forced-collision pair: distinct paths, one FileId.
        let col_key = FileId(0x0dd0_c0de);
        let col_a = tmpfile("prop-col-a", b"ALPHA-ALPHA-ALPHA");
        let col_b = tmpfile("prop-col-b", b"beta-beta-beta-bb");

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let files = Arc::clone(&files);
                let (col_a, col_b) = (col_a.clone(), col_b.clone());
                std::thread::spawn(move || {
                    for round in 0..200 {
                        let (path, full, want) = &files[(t * 7 + round * 3) % files.len()];
                        let (got, _) = cache.read(path, full).unwrap();
                        assert_eq!(&got[..], &want[..], "wrong body for {path}");
                        // Interleave the forced-collision pair.
                        let (cp, cf, cw): (&str, &std::path::PathBuf, &[u8]) =
                            if (t + round) % 2 == 0 {
                                ("/col-a", &col_a, b"ALPHA-ALPHA-ALPHA")
                            } else {
                                ("/col-b", &col_b, b"beta-beta-beta-bb")
                            };
                        let (got, _) = cache.read_keyed(col_key, cp, cf).unwrap();
                        assert_eq!(&got[..], cw, "collision served the wrong body for {cp}");
                        // Segment shares are a hard bound at all times.
                        for (i, s) in cache.segment_stats().iter().enumerate() {
                            assert!(
                                s.used <= s.capacity,
                                "segment {i} over its share: {} > {}",
                                s.used,
                                s.capacity
                            );
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(cache.hits() > 0, "the workload must produce some hits");
        assert!(cache.collisions() > 0, "forced collisions must be detected");
        assert!(cache.used() <= cache.capacity());

        for (_, f, _) in files.iter() {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_file(&col_a);
        let _ = std::fs::remove_file(&col_b);
    }
}
