//! In-process file cache for the live server — the page-cache effect the
//! simulator models, made explicit (extension; NCSA httpd 1.3 relied on
//! the OS buffer cache and re-`read()` per request).
//!
//! Bodies are stored as [`Bytes`], so concurrent responses share one copy
//! with no duplication. Entries are validated against the file's mtime on
//! every hit: an edited document is re-read, never served stale.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use bytes::Bytes;
use parking_lot::Mutex;
use sweb_cluster::{FileId, PageCache};

struct Entry {
    body: Bytes,
    mtime: SystemTime,
}

/// Byte-bounded, mtime-validated LRU cache of document bodies.
pub struct FileCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Inner {
    lru: PageCache,
    bodies: HashMap<FileId, Entry>,
}

fn key_of(path: &str) -> FileId {
    // FNV-1a over the canonical request path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    FileId(h)
}

impl FileCache {
    /// A cache holding at most `capacity` bytes of document bodies.
    pub fn new(capacity: u64) -> Self {
        FileCache {
            inner: Mutex::new(Inner { lru: PageCache::new(capacity), bodies: HashMap::new() }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count (including invalidations and read errors).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.inner.lock().lru.used()
    }

    /// Fetch `full` (request path `path` for keying): from memory when the
    /// cached copy's mtime still matches, from disk otherwise. Returns the
    /// body and the file's mtime.
    pub fn read(&self, path: &str, full: &Path) -> std::io::Result<(Bytes, SystemTime)> {
        let key = key_of(path);
        let mtime = std::fs::metadata(full)?.modified()?;
        {
            let mut inner = self.inner.lock();
            if let Some(entry) = inner.bodies.get(&key) {
                if entry.mtime == mtime && inner.lru.contains(key) {
                    let body = entry.body.clone();
                    inner.lru.access(key, body.len() as u64); // LRU touch
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((body, mtime));
                }
            }
        }
        // Miss or stale: read outside the lock (large files, slow disks).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let body = Bytes::from(std::fs::read(full)?);
        let mut inner = self.inner.lock();
        inner.lru.invalidate(key);
        if (body.len() as u64) <= inner.lru.capacity() {
            inner.lru.access(key, body.len() as u64);
            inner.bodies.insert(key, Entry { body: body.clone(), mtime });
        } else {
            inner.bodies.remove(&key);
        }
        // Drop bodies the LRU evicted (PageCache only tracks ids/sizes).
        let lru = &inner.lru;
        let live: std::collections::HashSet<FileId> = lru.keys().collect();
        inner.bodies.retain(|k, _| live.contains(k));
        Ok((body, mtime))
    }
}

impl std::fmt::Debug for FileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileCache")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("used", &self.used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("sweb-fc-{tag}-{}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn second_read_hits_memory() {
        let f = tmpfile("hit", b"hello world");
        let cache = FileCache::new(1 << 20);
        let (a, _) = cache.read("/hit", &f).unwrap();
        let (b, _) = cache.read("/hit", &f).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn modification_invalidates() {
        let f = tmpfile("mod", b"version one");
        let cache = FileCache::new(1 << 20);
        let (a, _) = cache.read("/mod", &f).unwrap();
        assert_eq!(&a[..], b"version one");
        // Rewrite with a strictly newer mtime.
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&f, b"version two!").unwrap();
        let (b, _) = cache.read("/mod", &f).unwrap();
        assert_eq!(&b[..], b"version two!");
        assert_eq!(cache.misses(), 2, "stale entry must re-read");
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn capacity_bounds_and_eviction() {
        let cache = FileCache::new(100);
        let files: Vec<_> = (0..5)
            .map(|i| tmpfile(&format!("cap{i}"), &[b'x'; 40]))
            .collect();
        for (i, f) in files.iter().enumerate() {
            cache.read(&format!("/cap{i}"), f).unwrap();
            assert!(cache.used() <= 100);
        }
        // Only the two most recent 40-byte bodies fit.
        assert_eq!(cache.used(), 80);
        // Oldest entries miss again; newest hits.
        cache.read("/cap4", &files[4]).unwrap();
        assert_eq!(cache.hits(), 1);
        cache.read("/cap0", &files[0]).unwrap();
        assert_eq!(cache.misses(), 6);
        for f in files {
            let _ = std::fs::remove_file(&f);
        }
    }

    #[test]
    fn oversized_files_pass_through_uncached() {
        let f = tmpfile("big", &vec![b'y'; 512]);
        let cache = FileCache::new(100);
        let (a, _) = cache.read("/big", &f).unwrap();
        assert_eq!(a.len(), 512);
        assert_eq!(cache.used(), 0);
        cache.read("/big", &f).unwrap();
        assert_eq!(cache.misses(), 2, "oversized bodies never cache");
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        let cache = FileCache::new(100);
        assert!(cache.read("/gone", Path::new("/definitely/not/here")).is_err());
    }
}
