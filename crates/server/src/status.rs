//! The introspection API: a typed, versioned [`StatusReport`] served as
//! text or JSON from `/sweb-status`, and a Prometheus-style exposition at
//! `/metrics`. Both administrative endpoints are always answered by the
//! node they reached (never redirected).
//!
//! The report is one value with two serializers: the human text page and
//! the machine JSON document are views of the same struct, so they cannot
//! drift apart, and `StatusReport::from_json` gives API consumers a
//! schema-checked round trip.

use sweb_chaos::FaultCountsSnapshot;
use sweb_cluster::NodeId;
use sweb_http::Response;
use sweb_telemetry::Json;

use crate::node::NodeShared;

/// Path of the status endpoint (`?format=json` selects the JSON view).
pub const STATUS_PATH: &str = "/sweb-status";

/// Path of the Prometheus-style metric exposition.
pub const METRICS_PATH: &str = "/metrics";

/// Version stamped into every JSON report; consumers must check it.
///
/// v2 added per-peer `health` and the node's `draining` flag and
/// injected-fault counters (the failure-domain view).
/// v3 added the `shards` array: one row per reactor shard (liveness plus
/// the shard's slice of the hot counters).
/// v4 added the peer-transfer counters (`peer_fetches`,
/// `forward_failures`, `peer_frames_bad`, `pushes_sent`,
/// `pushes_received`) and the peer-channel fault counters (`peer_drops`,
/// `peer_delays`) in the faults block.
/// v5 added `io_backend` to each shard row: the poller backend the
/// shard's loop actually runs (`"uring"`, `"epoll"`, `"poll"`, or
/// `"none"` for the threaded engine / a not-yet-started loop).
/// v6 added the `handlers` array (one row per dynamic handler class:
/// invocations, cache hits, measured t_cpu p50/p99, and the oracle's
/// current per-class estimate) and the `dynamic_cache` block. The
/// per-class table is now the *only* dynamic-content accounting; no
/// aggregate top-level CGI counters were ever part of the schema, so
/// nothing is removed — consumers that summed `served` to approximate
/// CGI traffic should read `handlers[].invocations` instead.
/// v7 added the `overload` block (adaptive-admission shed level and
/// per-class shed counts, per-peer circuit-breaker states with open /
/// fast-fail totals, retry-budget exhaustions, and the current
/// load-derived `Retry-After` value) and two fault counters
/// (`overload_samples`, `brownout_delays`) for the injected overload /
/// brownout faults.
/// v8 added the `io` block: the poller's kernel-crossing counters
/// (syscalls, SQE/CQE traffic, syscalls saved) plus the zero-copy data
/// path introduced with registered buffers — `write_fixed`,
/// `buf_pool_exhausted`, `send_zc`, `zc_copies_avoided`, and the
/// SQ-pressure signal `sqe_backlogged`. Previously these lived only in
/// `/metrics`; the status document now carries them so bench tooling
/// can diff one JSON fetch.
pub const STATUS_SCHEMA_VERSION: u64 = 8;

/// One node's full introspection snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// JSON schema version ([`STATUS_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Reporting node id.
    pub node: u32,
    /// Scheduling policy the node runs.
    pub policy: String,
    /// Connection engine the node runs.
    pub engine: String,
    /// Whether this node is draining (leaving the scheduling pool).
    pub draining: bool,
    /// The node's view of every peer's load.
    pub load: Vec<LoadRow>,
    /// Lifetime request counters (sums across shards).
    pub counters: CounterSnapshot,
    /// Per-shard breakdown of the hot counters (one row for the threaded
    /// engine's single logical shard).
    pub shards: Vec<ShardRow>,
    /// Per-class dynamic handler accounting, sorted by class name.
    pub handlers: Vec<HandlerRow>,
    /// Dynamic response-cache state.
    pub dynamic_cache: crate::dynamic::DynamicCacheStats,
    /// File-cache state.
    pub cache: CacheSnapshot,
    /// Connection-engine I/O counters (schema v8), summed across shards.
    pub io: IoSnapshot,
    /// Overload-control state: admission, breakers, retry budgets.
    pub overload: OverloadSnapshot,
    /// Faults injected so far by the chaos harness (all zero without one).
    pub faults: FaultCountsSnapshot,
}

/// The connection engine's kernel-crossing counters (schema v8), summed
/// across shards. All zero for the threaded engine; the SQE/CQE and
/// zero-copy counters are zero on the readiness backends too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Kernel entries the pollers made.
    pub syscalls: u64,
    /// io_uring submission-queue entries pushed.
    pub sqe_submitted: u64,
    /// io_uring completion-queue entries reaped.
    pub cqe_completed: u64,
    /// Syscalls the completion backend absorbed.
    pub syscalls_saved: u64,
    /// Responses sent as `WRITE_FIXED` from the registered staging pool.
    pub write_fixed: u64,
    /// Staging-pool misses that fell back to plain `WRITEV`.
    pub buf_pool_exhausted: u64,
    /// `SEND_ZC` operations submitted for large bodies.
    pub send_zc: u64,
    /// Completed zero-copy sends (kernel payload copies avoided).
    pub zc_copies_avoided: u64,
    /// SQEs that waited in the userspace backlog (SQ pressure).
    pub sqe_backlogged: u64,
}

/// The overload-control subsystem's introspection block (schema v7).
///
/// The structures always exist — `enabled: false` means the gates are
/// bypassed (`--overload off`), not that the numbers are absent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OverloadSnapshot {
    /// Whether the admission/breaker/budget gates are active.
    pub enabled: bool,
    /// Current admission shed level (0 = admit everything, 3 = shed all
    /// non-admin traffic).
    pub shed_level: u64,
    /// The `Retry-After` seconds a shed response would carry right now.
    pub retry_after_secs: u64,
    /// Requests refused by the admission controller, by class, in shed
    /// order: `peer_serve`, `dynamic`, `static_miss`, `static_hit`.
    pub sheds_by_class: [u64; 4],
    /// Per-peer circuit-breaker states (`"closed"`, `"open"`,
    /// `"half-open"`), indexed by node id.
    pub breakers: Vec<String>,
    /// Closed→Open transitions across all peers, lifetime.
    pub breaker_opens: u64,
    /// Peer operations refused instantly by an open breaker, lifetime.
    pub breaker_fast_fails: u64,
    /// Retries refused because a retry budget was drained, lifetime.
    pub retry_exhausted: u64,
}

/// One reactor shard's slice of the node's hot counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRow {
    /// Shard index.
    pub shard: u32,
    /// Whether this shard's event loop is currently running.
    pub live: bool,
    /// I/O backend the shard's loop runs (`"uring"`, `"epoll"`,
    /// `"poll"`; `"none"` for the threaded engine or before start).
    pub io_backend: String,
    /// Connections this shard accepted.
    pub accepted: u64,
    /// Requests this shard served.
    pub served: u64,
    /// Connections this shard refused 503.
    pub shed: u64,
    /// Requests in flight on this shard right now (may go negative for a
    /// single cell when a connection closes on a different shard's
    /// thread; only the sum is a true gauge).
    pub active: i64,
}

/// One dynamic handler class's accounting: how often it ran, how often
/// the response cache answered for it, what its invocations actually
/// cost, and what the oracle currently believes they cost.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerRow {
    /// Handler class name (`"echo"`, `"burn"`, `"fork"`, ...).
    pub class: String,
    /// Real handler invocations (cache hits excluded).
    pub invocations: u64,
    /// Requests answered from the dynamic response cache.
    pub cache_hits: u64,
    /// Median measured handler wall time, microseconds.
    pub p50_us: u64,
    /// 99th-percentile measured handler wall time, microseconds.
    pub p99_us: u64,
    /// The oracle's current CPU-demand estimate for this class, in ops —
    /// the tuned EWMA once measurements have fed back, the static prior
    /// until then. This is the `t_cpu` input the broker's cost model
    /// uses for the class.
    pub oracle_ops: f64,
}

/// One row of the load table as this node sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRow {
    /// Peer node id.
    pub node: u32,
    /// CPU channel load.
    pub cpu: f64,
    /// Disk channel load.
    pub disk: f64,
    /// Network channel load.
    pub net: f64,
    /// Whether the peer still counts toward cluster capacity (not Dead).
    pub alive: bool,
    /// Tri-state health: `"alive"`, `"suspect"` or `"dead"`.
    pub health: String,
    /// Milliseconds since the last report from this peer.
    pub age_ms: f64,
}

/// Lifetime counters, snapshotted atomically enough for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests fulfilled locally.
    pub served: u64,
    /// Requests answered with a 302 to a peer.
    pub redirected: u64,
    /// Requests that arrived already redirected once.
    pub received_redirects: u64,
    /// Malformed requests answered 400.
    pub bad_requests: u64,
    /// `accept(2)` failures.
    pub accept_errors: u64,
    /// Connections refused 503.
    pub shed: u64,
    /// Connections evicted on timeout.
    pub evicted: u64,
    /// Zero-copy transmits.
    pub zero_copy: u64,
    /// `sendfile(2)` transmits.
    pub sendfile: u64,
    /// Requests in flight right now.
    pub active: i64,
    /// Response bytes in flight right now.
    pub bytes_in_flight: i64,
    /// loadd packets that failed to decode (garbage, bad magic, bad id).
    pub loadd_decode_errors: u64,
    /// Peers marked Suspect after one silent loadd period.
    pub peer_suspect: u64,
    /// Peers marked Dead (staleness timeout or a leaving packet).
    pub peer_dead: u64,
    /// Dead/Suspect peers revived by a fresh loadd packet.
    pub peer_revived: u64,
    /// Requests refused 503 for blowing their per-phase deadline.
    pub deadline_overruns: u64,
    /// Transient fetch errors retried with backoff.
    pub fetch_retries: u64,
    /// Requests served by pulling the document over the peer channel.
    pub peer_fetches: u64,
    /// Peer pulls that failed (and degraded to a redirect or local read).
    pub forward_failures: u64,
    /// Garbled/unexpected peer-channel frames (counted, never fatal).
    pub peer_frames_bad: u64,
    /// Hot documents this node pushed to peers (replication).
    pub pushes_sent: u64,
    /// Replication pushes this node accepted into its cache.
    pub pushes_received: u64,
}

/// File-cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Key collisions detected.
    pub collisions: u64,
    /// Bytes currently cached.
    pub used_bytes: u64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Bits set in the advertised Bloom digest.
    pub digest_bits: u64,
}

impl StatusReport {
    /// Snapshot `shared` into a report.
    pub fn gather(shared: &NodeShared) -> StatusReport {
        let now = shared.now();
        let load = {
            let loads = shared.loads.read();
            (0..loads.len())
                .map(|i| {
                    let id = NodeId(i as u32);
                    let l = loads.load(id);
                    LoadRow {
                        node: id.0,
                        cpu: l.cpu,
                        disk: l.disk,
                        net: l.net,
                        alive: loads.is_alive(id),
                        health: loads.health(id).name().to_string(),
                        age_ms: now.saturating_sub(loads.updated_at(id)).as_millis_f64(),
                    }
                })
                .collect()
        };
        let s = &shared.stats;
        StatusReport {
            schema_version: STATUS_SCHEMA_VERSION,
            node: shared.id.0,
            policy: shared.broker.policy().to_string(),
            engine: shared.engine.name().to_string(),
            draining: shared.draining.load(std::sync::atomic::Ordering::Relaxed),
            load,
            counters: CounterSnapshot {
                accepted: s.accepted.get(),
                served: s.served.get(),
                redirected: s.redirected.get(),
                received_redirects: s.received_redirects.get(),
                bad_requests: s.bad_requests.get(),
                accept_errors: s.accept_errors.get(),
                shed: s.shed.get(),
                evicted: s.evicted.get(),
                zero_copy: s.zero_copy.get(),
                sendfile: s.sendfile.get(),
                active: s.active.get(),
                bytes_in_flight: s.bytes_in_flight.get(),
                loadd_decode_errors: s.loadd_decode_errors.get(),
                peer_suspect: s.peer_suspect.get(),
                peer_dead: s.peer_dead.get(),
                peer_revived: s.peer_revived.get(),
                deadline_overruns: s.deadline_overruns.get(),
                fetch_retries: s.fetch_retries.get(),
                peer_fetches: s.peer_fetches.get(),
                forward_failures: s.forward_failures.get(),
                peer_frames_bad: s.peer_frames_bad.get(),
                pushes_sent: s.pushes_sent.get(),
                pushes_received: s.pushes_received.get(),
            },
            shards: (0..shared.shards.max(1))
                .map(|i| ShardRow {
                    shard: i as u32,
                    live: shared
                        .shard_live
                        .get(i)
                        .is_some_and(|l| l.load(std::sync::atomic::Ordering::Relaxed)),
                    io_backend: shared
                        .shard_io_backend
                        .get(i)
                        .map(|b| b.read().to_string())
                        .unwrap_or_else(|| "none".to_string()),
                    accepted: s.accepted.cell_value(i),
                    served: s.served.cell_value(i),
                    shed: s.shed.cell_value(i),
                    active: s.active.cell_value(i),
                })
                .collect(),
            handlers: shared
                .dynamic
                .class_rows()
                .into_iter()
                .map(|(class, cs)| HandlerRow {
                    class: class.to_string(),
                    invocations: cs.invocations.get(),
                    cache_hits: cs.cache_hits.get(),
                    p50_us: cs.tcpu_us.quantile(0.5),
                    p99_us: cs.tcpu_us.quantile(0.99),
                    oracle_ops: shared.oracle.characterize_dynamic(
                        class,
                        &format!("/cgi-bin/{class}"),
                        4096,
                    ),
                })
                .collect(),
            dynamic_cache: shared.dynamic.cache.stats(),
            cache: CacheSnapshot {
                hits: shared.file_cache.hits(),
                misses: shared.file_cache.misses(),
                collisions: shared.file_cache.collisions(),
                used_bytes: shared.file_cache.used(),
                capacity_bytes: shared.file_cache.capacity(),
                digest_bits: shared.file_cache.digest().ones() as u64,
            },
            io: IoSnapshot {
                syscalls: s.io_syscalls.get(),
                sqe_submitted: s.io_sqe_submitted.get(),
                cqe_completed: s.io_cqe_completed.get(),
                syscalls_saved: s.io_syscalls_saved.get(),
                write_fixed: s.io_write_fixed.get(),
                buf_pool_exhausted: s.io_buf_pool_exhausted.get(),
                send_zc: s.io_send_zc.get(),
                zc_copies_avoided: s.io_zc_copies_avoided.get(),
                sqe_backlogged: s.io_sqe_backlogged.get(),
            },
            overload: OverloadSnapshot {
                enabled: shared.overload_control,
                shed_level: shared.admission.level() as u64,
                retry_after_secs: shared.admission.retry_after_secs(),
                sheds_by_class: [
                    sweb_core::AdmitClass::PeerServe,
                    sweb_core::AdmitClass::Dynamic,
                    sweb_core::AdmitClass::StaticMiss,
                    sweb_core::AdmitClass::StaticHit,
                ]
                .map(|cl| s.admission_shed_counter(cl).get()),
                breakers: (0..shared.breakers.len())
                    .map(|i| shared.breakers.state(NodeId(i as u32)).name().to_string())
                    .collect(),
                breaker_opens: shared.breakers.opens_total(),
                breaker_fast_fails: shared.breakers.fast_fails_total(),
                retry_exhausted: s.retry_budget_exhausted.get(),
            },
            faults: shared.chaos.counts().snapshot(),
        }
    }

    /// The human-readable status page (the pre-JSON format, unchanged).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "SWEB node n{} — policy {} — engine {}{}\n\nload table (this node's view):\n",
            self.node,
            self.policy,
            self.engine,
            if self.draining { " — DRAINING" } else { "" },
        ));
        out.push_str("node   cpu     disk    net     health   age(ms)\n");
        for row in &self.load {
            out.push_str(&format!(
                "{:<6} {:<7.2} {:<7.2} {:<7.2} {:<8} {:.0}\n",
                format!("n{}", row.node),
                row.cpu,
                row.disk,
                row.net,
                row.health,
                row.age_ms,
            ));
        }
        let c = &self.counters;
        out.push_str(&format!(
            "\ncounters:\n  accepted          {}\n  served            {}\n  redirected-away   {}\n  \
             received-redirects {}\n  bad-requests      {}\n  accept-errors     {}\n  \
             shed-503          {}\n  evicted           {}\n  zero-copy         {}\n  \
             sendfile          {}\n  active-now        {}\n  \
             decode-errors     {}\n  peer-suspect      {}\n  peer-dead         {}\n  \
             peer-revived      {}\n  deadline-overruns {}\n  fetch-retries     {}\n  \
             peer-fetches      {}\n  forward-failures  {}\n  peer-frames-bad   {}\n  \
             pushes-sent       {}\n  pushes-received   {}\n",
            c.accepted,
            c.served,
            c.redirected,
            c.received_redirects,
            c.bad_requests,
            c.accept_errors,
            c.shed,
            c.evicted,
            c.zero_copy,
            c.sendfile,
            c.active,
            c.loadd_decode_errors,
            c.peer_suspect,
            c.peer_dead,
            c.peer_revived,
            c.deadline_overruns,
            c.fetch_retries,
            c.peer_fetches,
            c.forward_failures,
            c.peer_frames_bad,
            c.pushes_sent,
            c.pushes_received,
        ));
        out.push_str(
            "\nshards:\nshard  live   backend  accepted  served    shed      active\n",
        );
        for row in &self.shards {
            out.push_str(&format!(
                "{:<6} {:<6} {:<8} {:<9} {:<9} {:<9} {}\n",
                format!("s{}", row.shard),
                if row.live { "yes" } else { "no" },
                row.io_backend,
                row.accepted,
                row.served,
                row.shed,
                row.active,
            ));
        }
        out.push_str(
            "\nhandlers:\nclass       invoked   cache-hit p50(us)   p99(us)   oracle(ops)\n",
        );
        for row in &self.handlers {
            out.push_str(&format!(
                "{:<11} {:<9} {:<9} {:<9} {:<9} {:.0}\n",
                row.class, row.invocations, row.cache_hits, row.p50_us, row.p99_us, row.oracle_ops,
            ));
        }
        let d = &self.dynamic_cache;
        out.push_str(&format!(
            "dynamic cache: {} hits, {} misses, {} expired, {} evicted, {} / {} entries\n",
            d.hits, d.misses, d.expired, d.evictions, d.entries, d.max_entries,
        ));
        out.push_str(&format!(
            "\nfile cache: {} hits, {} misses, {} collisions, {} / {} bytes, digest {} bits set\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.collisions,
            self.cache.used_bytes,
            self.cache.capacity_bytes,
            self.cache.digest_bits,
        ));
        let io = &self.io;
        out.push_str(&format!(
            "\nio: {} syscalls, {} sqe, {} cqe, {} saved\n  \
             zero-copy path: {} write-fixed, {} pool-exhausted, {} send-zc, \
             {} copies avoided, {} sqe backlogged\n",
            io.syscalls,
            io.sqe_submitted,
            io.cqe_completed,
            io.syscalls_saved,
            io.write_fixed,
            io.buf_pool_exhausted,
            io.send_zc,
            io.zc_copies_avoided,
            io.sqe_backlogged,
        ));
        let o = &self.overload;
        out.push_str(&format!(
            "\noverload control: {} — shed level {}, retry-after {}s\n  \
             sheds: {} peer-serve, {} dynamic, {} static-miss, {} static-hit\n  \
             breakers: [{}] — {} opens, {} fast-fails\n  \
             retry budgets: {} exhausted\n",
            if o.enabled { "on" } else { "off" },
            o.shed_level,
            o.retry_after_secs,
            o.sheds_by_class[0],
            o.sheds_by_class[1],
            o.sheds_by_class[2],
            o.sheds_by_class[3],
            o.breakers.join(", "),
            o.breaker_opens,
            o.breaker_fast_fails,
            o.retry_exhausted,
        ));
        let f = &self.faults;
        if f != &FaultCountsSnapshot::default() {
            out.push_str(&format!(
                "\ninjected faults: {} pkts dropped, {} pkts delayed, {} accepts paused, \
                 {} fd rejections, {} slow reads\n",
                f.packets_dropped, f.packets_delayed, f.accepts_paused, f.fd_rejections, f.slow_reads,
            ));
            if f.peer_drops + f.peer_delays > 0 {
                out.push_str(&format!(
                    "peer channel: {} frames dropped, {} frames delayed\n",
                    f.peer_drops, f.peer_delays,
                ));
            }
            if f.overload_samples + f.brownout_delays > 0 {
                out.push_str(&format!(
                    "overload faults: {} sojourn samples inflated, {} brownout delays\n",
                    f.overload_samples, f.brownout_delays,
                ));
            }
        }
        out
    }

    /// The JSON view (`/sweb-status?format=json`).
    pub fn to_json(&self) -> Json {
        let obj = |members: Vec<(&str, Json)>| {
            Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let c = &self.counters;
        obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("node", Json::Num(self.node as f64)),
            ("policy", Json::Str(self.policy.clone())),
            ("engine", Json::Str(self.engine.clone())),
            ("draining", Json::Bool(self.draining)),
            (
                "load",
                Json::Arr(
                    self.load
                        .iter()
                        .map(|row| {
                            obj(vec![
                                ("node", Json::Num(row.node as f64)),
                                ("cpu", Json::Num(row.cpu)),
                                ("disk", Json::Num(row.disk)),
                                ("net", Json::Num(row.net)),
                                ("alive", Json::Bool(row.alive)),
                                ("health", Json::Str(row.health.clone())),
                                ("age_ms", Json::Num(row.age_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                obj(vec![
                    ("accepted", Json::Num(c.accepted as f64)),
                    ("served", Json::Num(c.served as f64)),
                    ("redirected", Json::Num(c.redirected as f64)),
                    ("received_redirects", Json::Num(c.received_redirects as f64)),
                    ("bad_requests", Json::Num(c.bad_requests as f64)),
                    ("accept_errors", Json::Num(c.accept_errors as f64)),
                    ("shed", Json::Num(c.shed as f64)),
                    ("evicted", Json::Num(c.evicted as f64)),
                    ("zero_copy", Json::Num(c.zero_copy as f64)),
                    ("sendfile", Json::Num(c.sendfile as f64)),
                    ("active", Json::Num(c.active as f64)),
                    ("bytes_in_flight", Json::Num(c.bytes_in_flight as f64)),
                    ("loadd_decode_errors", Json::Num(c.loadd_decode_errors as f64)),
                    ("peer_suspect", Json::Num(c.peer_suspect as f64)),
                    ("peer_dead", Json::Num(c.peer_dead as f64)),
                    ("peer_revived", Json::Num(c.peer_revived as f64)),
                    ("deadline_overruns", Json::Num(c.deadline_overruns as f64)),
                    ("fetch_retries", Json::Num(c.fetch_retries as f64)),
                    ("peer_fetches", Json::Num(c.peer_fetches as f64)),
                    ("forward_failures", Json::Num(c.forward_failures as f64)),
                    ("peer_frames_bad", Json::Num(c.peer_frames_bad as f64)),
                    ("pushes_sent", Json::Num(c.pushes_sent as f64)),
                    ("pushes_received", Json::Num(c.pushes_received as f64)),
                ]),
            ),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|row| {
                            obj(vec![
                                ("shard", Json::Num(row.shard as f64)),
                                ("live", Json::Bool(row.live)),
                                ("io_backend", Json::Str(row.io_backend.clone())),
                                ("accepted", Json::Num(row.accepted as f64)),
                                ("served", Json::Num(row.served as f64)),
                                ("shed", Json::Num(row.shed as f64)),
                                ("active", Json::Num(row.active as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "handlers",
                Json::Arr(
                    self.handlers
                        .iter()
                        .map(|row| {
                            obj(vec![
                                ("class", Json::Str(row.class.clone())),
                                ("invocations", Json::Num(row.invocations as f64)),
                                ("cache_hits", Json::Num(row.cache_hits as f64)),
                                ("p50_us", Json::Num(row.p50_us as f64)),
                                ("p99_us", Json::Num(row.p99_us as f64)),
                                ("oracle_ops", Json::Num(row.oracle_ops)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "dynamic_cache",
                obj(vec![
                    ("hits", Json::Num(self.dynamic_cache.hits as f64)),
                    ("misses", Json::Num(self.dynamic_cache.misses as f64)),
                    ("expired", Json::Num(self.dynamic_cache.expired as f64)),
                    ("evictions", Json::Num(self.dynamic_cache.evictions as f64)),
                    ("entries", Json::Num(self.dynamic_cache.entries as f64)),
                    ("max_entries", Json::Num(self.dynamic_cache.max_entries as f64)),
                ]),
            ),
            (
                "cache",
                obj(vec![
                    ("hits", Json::Num(self.cache.hits as f64)),
                    ("misses", Json::Num(self.cache.misses as f64)),
                    ("collisions", Json::Num(self.cache.collisions as f64)),
                    ("used_bytes", Json::Num(self.cache.used_bytes as f64)),
                    ("capacity_bytes", Json::Num(self.cache.capacity_bytes as f64)),
                    ("digest_bits", Json::Num(self.cache.digest_bits as f64)),
                ]),
            ),
            (
                "io",
                obj(vec![
                    ("syscalls", Json::Num(self.io.syscalls as f64)),
                    ("sqe_submitted", Json::Num(self.io.sqe_submitted as f64)),
                    ("cqe_completed", Json::Num(self.io.cqe_completed as f64)),
                    ("syscalls_saved", Json::Num(self.io.syscalls_saved as f64)),
                    ("write_fixed", Json::Num(self.io.write_fixed as f64)),
                    ("buf_pool_exhausted", Json::Num(self.io.buf_pool_exhausted as f64)),
                    ("send_zc", Json::Num(self.io.send_zc as f64)),
                    ("zc_copies_avoided", Json::Num(self.io.zc_copies_avoided as f64)),
                    ("sqe_backlogged", Json::Num(self.io.sqe_backlogged as f64)),
                ]),
            ),
            (
                "overload",
                obj(vec![
                    ("enabled", Json::Bool(self.overload.enabled)),
                    ("shed_level", Json::Num(self.overload.shed_level as f64)),
                    ("retry_after_secs", Json::Num(self.overload.retry_after_secs as f64)),
                    (
                        "sheds_by_class",
                        obj(vec![
                            ("peer_serve", Json::Num(self.overload.sheds_by_class[0] as f64)),
                            ("dynamic", Json::Num(self.overload.sheds_by_class[1] as f64)),
                            ("static_miss", Json::Num(self.overload.sheds_by_class[2] as f64)),
                            ("static_hit", Json::Num(self.overload.sheds_by_class[3] as f64)),
                        ]),
                    ),
                    (
                        "breakers",
                        Json::Arr(
                            self.overload.breakers.iter().map(|s| Json::Str(s.clone())).collect(),
                        ),
                    ),
                    ("breaker_opens", Json::Num(self.overload.breaker_opens as f64)),
                    ("breaker_fast_fails", Json::Num(self.overload.breaker_fast_fails as f64)),
                    ("retry_exhausted", Json::Num(self.overload.retry_exhausted as f64)),
                ]),
            ),
            (
                "faults",
                obj(vec![
                    ("packets_dropped", Json::Num(self.faults.packets_dropped as f64)),
                    ("packets_delayed", Json::Num(self.faults.packets_delayed as f64)),
                    ("accepts_paused", Json::Num(self.faults.accepts_paused as f64)),
                    ("fd_rejections", Json::Num(self.faults.fd_rejections as f64)),
                    ("slow_reads", Json::Num(self.faults.slow_reads as f64)),
                    ("peer_drops", Json::Num(self.faults.peer_drops as f64)),
                    ("peer_delays", Json::Num(self.faults.peer_delays as f64)),
                    ("overload_samples", Json::Num(self.faults.overload_samples as f64)),
                    ("brownout_delays", Json::Num(self.faults.brownout_delays as f64)),
                ]),
            ),
        ])
    }

    /// Parse a JSON document back into a report, strictly checking the
    /// schema version. This is the consumer-side contract test: anything a
    /// node serves must round-trip through here unchanged.
    pub fn from_json(v: &Json) -> Result<StatusReport, String> {
        let field = |obj: &Json, key: &str| -> Result<Json, String> {
            obj.get(key).cloned().ok_or_else(|| format!("missing field {key:?}"))
        };
        let num_u64 = |obj: &Json, key: &str| -> Result<u64, String> {
            field(obj, key)?.as_u64().ok_or_else(|| format!("field {key:?} is not a u64"))
        };
        let num_i64 = |obj: &Json, key: &str| -> Result<i64, String> {
            field(obj, key)?.as_i64().ok_or_else(|| format!("field {key:?} is not an i64"))
        };
        let num_f64 = |obj: &Json, key: &str| -> Result<f64, String> {
            field(obj, key)?.as_f64().ok_or_else(|| format!("field {key:?} is not a number"))
        };
        let schema_version = num_u64(v, "schema_version")?;
        if schema_version != STATUS_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (want {STATUS_SCHEMA_VERSION})"
            ));
        }
        let load = field(v, "load")?
            .as_arr()
            .ok_or("load is not an array")?
            .iter()
            .map(|row| {
                Ok(LoadRow {
                    node: num_u64(row, "node")? as u32,
                    cpu: num_f64(row, "cpu")?,
                    disk: num_f64(row, "disk")?,
                    net: num_f64(row, "net")?,
                    alive: field(row, "alive")?.as_bool().ok_or("alive is not a bool")?,
                    health: field(row, "health")?
                        .as_str()
                        .ok_or("health is not a string")?
                        .to_string(),
                    age_ms: num_f64(row, "age_ms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let c = field(v, "counters")?;
        let counters = CounterSnapshot {
            accepted: num_u64(&c, "accepted")?,
            served: num_u64(&c, "served")?,
            redirected: num_u64(&c, "redirected")?,
            received_redirects: num_u64(&c, "received_redirects")?,
            bad_requests: num_u64(&c, "bad_requests")?,
            accept_errors: num_u64(&c, "accept_errors")?,
            shed: num_u64(&c, "shed")?,
            evicted: num_u64(&c, "evicted")?,
            zero_copy: num_u64(&c, "zero_copy")?,
            sendfile: num_u64(&c, "sendfile")?,
            active: num_i64(&c, "active")?,
            bytes_in_flight: num_i64(&c, "bytes_in_flight")?,
            loadd_decode_errors: num_u64(&c, "loadd_decode_errors")?,
            peer_suspect: num_u64(&c, "peer_suspect")?,
            peer_dead: num_u64(&c, "peer_dead")?,
            peer_revived: num_u64(&c, "peer_revived")?,
            deadline_overruns: num_u64(&c, "deadline_overruns")?,
            fetch_retries: num_u64(&c, "fetch_retries")?,
            peer_fetches: num_u64(&c, "peer_fetches")?,
            forward_failures: num_u64(&c, "forward_failures")?,
            peer_frames_bad: num_u64(&c, "peer_frames_bad")?,
            pushes_sent: num_u64(&c, "pushes_sent")?,
            pushes_received: num_u64(&c, "pushes_received")?,
        };
        let shards = field(v, "shards")?
            .as_arr()
            .ok_or("shards is not an array")?
            .iter()
            .map(|row| {
                Ok(ShardRow {
                    shard: num_u64(row, "shard")? as u32,
                    live: field(row, "live")?.as_bool().ok_or("live is not a bool")?,
                    io_backend: field(row, "io_backend")?
                        .as_str()
                        .ok_or("io_backend is not a string")?
                        .to_string(),
                    accepted: num_u64(row, "accepted")?,
                    served: num_u64(row, "served")?,
                    shed: num_u64(row, "shed")?,
                    active: num_i64(row, "active")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let handlers = field(v, "handlers")?
            .as_arr()
            .ok_or("handlers is not an array")?
            .iter()
            .map(|row| {
                Ok(HandlerRow {
                    class: field(row, "class")?
                        .as_str()
                        .ok_or("class is not a string")?
                        .to_string(),
                    invocations: num_u64(row, "invocations")?,
                    cache_hits: num_u64(row, "cache_hits")?,
                    p50_us: num_u64(row, "p50_us")?,
                    p99_us: num_u64(row, "p99_us")?,
                    oracle_ops: num_f64(row, "oracle_ops")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let d = field(v, "dynamic_cache")?;
        let dynamic_cache = crate::dynamic::DynamicCacheStats {
            hits: num_u64(&d, "hits")?,
            misses: num_u64(&d, "misses")?,
            expired: num_u64(&d, "expired")?,
            evictions: num_u64(&d, "evictions")?,
            entries: num_u64(&d, "entries")?,
            max_entries: num_u64(&d, "max_entries")?,
        };
        let k = field(v, "cache")?;
        let cache = CacheSnapshot {
            hits: num_u64(&k, "hits")?,
            misses: num_u64(&k, "misses")?,
            collisions: num_u64(&k, "collisions")?,
            used_bytes: num_u64(&k, "used_bytes")?,
            capacity_bytes: num_u64(&k, "capacity_bytes")?,
            digest_bits: num_u64(&k, "digest_bits")?,
        };
        let i = field(v, "io")?;
        let io = IoSnapshot {
            syscalls: num_u64(&i, "syscalls")?,
            sqe_submitted: num_u64(&i, "sqe_submitted")?,
            cqe_completed: num_u64(&i, "cqe_completed")?,
            syscalls_saved: num_u64(&i, "syscalls_saved")?,
            write_fixed: num_u64(&i, "write_fixed")?,
            buf_pool_exhausted: num_u64(&i, "buf_pool_exhausted")?,
            send_zc: num_u64(&i, "send_zc")?,
            zc_copies_avoided: num_u64(&i, "zc_copies_avoided")?,
            sqe_backlogged: num_u64(&i, "sqe_backlogged")?,
        };
        let o = field(v, "overload")?;
        let sheds = field(&o, "sheds_by_class")?;
        let overload = OverloadSnapshot {
            enabled: field(&o, "enabled")?.as_bool().ok_or("enabled is not a bool")?,
            shed_level: num_u64(&o, "shed_level")?,
            retry_after_secs: num_u64(&o, "retry_after_secs")?,
            sheds_by_class: [
                num_u64(&sheds, "peer_serve")?,
                num_u64(&sheds, "dynamic")?,
                num_u64(&sheds, "static_miss")?,
                num_u64(&sheds, "static_hit")?,
            ],
            breakers: field(&o, "breakers")?
                .as_arr()
                .ok_or("breakers is not an array")?
                .iter()
                .map(|s| {
                    s.as_str().map(str::to_string).ok_or_else(|| "breaker is not a string".into())
                })
                .collect::<Result<Vec<_>, String>>()?,
            breaker_opens: num_u64(&o, "breaker_opens")?,
            breaker_fast_fails: num_u64(&o, "breaker_fast_fails")?,
            retry_exhausted: num_u64(&o, "retry_exhausted")?,
        };
        let f = field(v, "faults")?;
        let faults = FaultCountsSnapshot {
            packets_dropped: num_u64(&f, "packets_dropped")?,
            packets_delayed: num_u64(&f, "packets_delayed")?,
            accepts_paused: num_u64(&f, "accepts_paused")?,
            fd_rejections: num_u64(&f, "fd_rejections")?,
            slow_reads: num_u64(&f, "slow_reads")?,
            peer_drops: num_u64(&f, "peer_drops")?,
            peer_delays: num_u64(&f, "peer_delays")?,
            overload_samples: num_u64(&f, "overload_samples")?,
            brownout_delays: num_u64(&f, "brownout_delays")?,
        };
        Ok(StatusReport {
            schema_version,
            node: num_u64(v, "node")? as u32,
            policy: field(v, "policy")?.as_str().ok_or("policy is not a string")?.to_string(),
            engine: field(v, "engine")?.as_str().ok_or("engine is not a string")?.to_string(),
            draining: field(v, "draining")?.as_bool().ok_or("draining is not a bool")?,
            load,
            counters,
            shards,
            handlers,
            dynamic_cache,
            cache,
            io,
            overload,
            faults,
        })
    }
}

/// Render the status endpoint: the text page, or the JSON document when
/// the query selects `format=json`.
pub fn render(shared: &NodeShared, query: Option<&str>) -> Response {
    let report = StatusReport::gather(shared);
    let json = query
        .map(|q| q.split('&').any(|kv| kv == "format=json"))
        .unwrap_or(false);
    if json {
        Response::ok(report.to_json().render(), "application/json")
    } else {
        Response::ok(report.to_text(), "text/plain")
    }
}

/// Render the `/metrics` exposition: every registry series, plus the
/// file-cache series (the cache predates the registry and keeps its own
/// atomics; it is rendered as first-class metrics here).
pub fn render_metrics(shared: &NodeShared) -> Response {
    let mut out = shared.stats.registry.render_prometheus();
    let cache = &shared.file_cache;
    out.push_str("# HELP sweb_file_cache_hits_total Document cache hits\n");
    out.push_str("# TYPE sweb_file_cache_hits_total counter\n");
    out.push_str(&format!("sweb_file_cache_hits_total {}\n", cache.hits()));
    out.push_str("# HELP sweb_file_cache_misses_total Document cache misses\n");
    out.push_str("# TYPE sweb_file_cache_misses_total counter\n");
    out.push_str(&format!("sweb_file_cache_misses_total {}\n", cache.misses()));
    out.push_str("# HELP sweb_file_cache_collisions_total Cache key collisions\n");
    out.push_str("# TYPE sweb_file_cache_collisions_total counter\n");
    out.push_str(&format!("sweb_file_cache_collisions_total {}\n", cache.collisions()));
    out.push_str("# HELP sweb_file_cache_used_bytes Bytes currently cached\n");
    out.push_str("# TYPE sweb_file_cache_used_bytes gauge\n");
    out.push_str(&format!("sweb_file_cache_used_bytes {}\n", cache.used()));
    out.push_str("# HELP sweb_file_cache_capacity_bytes Cache capacity\n");
    out.push_str("# TYPE sweb_file_cache_capacity_bytes gauge\n");
    out.push_str(&format!("sweb_file_cache_capacity_bytes {}\n", cache.capacity()));
    out.push_str("# HELP sweb_file_cache_digest_bits Bits set in the advertised Bloom digest\n");
    out.push_str("# TYPE sweb_file_cache_digest_bits gauge\n");
    out.push_str(&format!("sweb_file_cache_digest_bits {}\n", cache.digest().ones()));
    // Overload-control series: like the file cache, the admission
    // controller and breakers keep their own atomics, rendered here as
    // first-class metrics.
    out.push_str("# HELP sweb_admission_shed_level Current adaptive-admission shed level (0-3)\n");
    out.push_str("# TYPE sweb_admission_shed_level gauge\n");
    out.push_str(&format!("sweb_admission_shed_level {}\n", shared.admission.level()));
    out.push_str("# HELP sweb_breaker_open Peer circuit breakers currently open\n");
    out.push_str("# TYPE sweb_breaker_open gauge\n");
    out.push_str(&format!("sweb_breaker_open {}\n", shared.breakers.open_count()));
    out.push_str("# HELP sweb_breaker_opens_total Closed-to-open breaker transitions\n");
    out.push_str("# TYPE sweb_breaker_opens_total counter\n");
    out.push_str(&format!("sweb_breaker_opens_total {}\n", shared.breakers.opens_total()));
    out.push_str("# HELP sweb_breaker_fast_fails_total Peer operations refused by an open breaker\n");
    out.push_str("# TYPE sweb_breaker_fast_fails_total counter\n");
    out.push_str(&format!("sweb_breaker_fast_fails_total {}\n", shared.breakers.fast_fails_total()));
    Response::ok(out, "text/plain; version=0.0.4")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> StatusReport {
        StatusReport {
            schema_version: STATUS_SCHEMA_VERSION,
            node: 2,
            policy: "sweb".to_string(),
            engine: "reactor".to_string(),
            draining: true,
            load: vec![
                LoadRow {
                    node: 0,
                    cpu: 1.5,
                    disk: 0.25,
                    net: 0.0,
                    alive: true,
                    health: "alive".to_string(),
                    age_ms: 12.0,
                },
                LoadRow {
                    node: 1,
                    cpu: 0.0,
                    disk: 0.0,
                    net: 3.5,
                    alive: false,
                    health: "dead".to_string(),
                    age_ms: 2000.0,
                },
            ],
            counters: CounterSnapshot {
                accepted: 100,
                served: 90,
                redirected: 8,
                received_redirects: 3,
                bad_requests: 1,
                accept_errors: 0,
                shed: 2,
                evicted: 1,
                zero_copy: 42,
                sendfile: 7,
                active: 5,
                bytes_in_flight: 123456,
                loadd_decode_errors: 4,
                peer_suspect: 3,
                peer_dead: 2,
                peer_revived: 1,
                deadline_overruns: 6,
                fetch_retries: 9,
                peer_fetches: 11,
                forward_failures: 2,
                peer_frames_bad: 1,
                pushes_sent: 4,
                pushes_received: 3,
            },
            shards: vec![
                ShardRow {
                    shard: 0,
                    live: true,
                    io_backend: "uring".to_string(),
                    accepted: 60,
                    served: 55,
                    shed: 2,
                    active: 3,
                },
                ShardRow {
                    shard: 1,
                    live: false,
                    io_backend: "epoll".to_string(),
                    accepted: 40,
                    served: 35,
                    shed: 0,
                    active: 2,
                },
            ],
            handlers: vec![
                HandlerRow {
                    class: "burn".to_string(),
                    invocations: 25,
                    cache_hits: 75,
                    p50_us: 1800,
                    p99_us: 4200,
                    oracle_ops: 250000.0,
                },
                HandlerRow {
                    class: "echo".to_string(),
                    invocations: 10,
                    cache_hits: 0,
                    p50_us: 30,
                    p99_us: 90,
                    oracle_ops: 5000.0,
                },
            ],
            dynamic_cache: crate::dynamic::DynamicCacheStats {
                hits: 75,
                misses: 35,
                expired: 4,
                evictions: 2,
                entries: 29,
                max_entries: 1024,
            },
            cache: CacheSnapshot {
                hits: 50,
                misses: 40,
                collisions: 0,
                used_bytes: 1 << 20,
                capacity_bytes: 16 << 20,
                digest_bits: 12,
            },
            io: IoSnapshot {
                syscalls: 1234,
                sqe_submitted: 10213,
                cqe_completed: 16835,
                syscalls_saved: 15013,
                write_fixed: 880,
                buf_pool_exhausted: 12,
                send_zc: 44,
                zc_copies_avoided: 41,
                sqe_backlogged: 7,
            },
            overload: OverloadSnapshot {
                enabled: true,
                shed_level: 2,
                retry_after_secs: 4,
                sheds_by_class: [6, 5, 3, 0],
                breakers: vec!["closed".to_string(), "open".to_string(), "closed".to_string()],
                breaker_opens: 2,
                breaker_fast_fails: 9,
                retry_exhausted: 1,
            },
            faults: FaultCountsSnapshot {
                packets_dropped: 17,
                packets_delayed: 5,
                accepts_paused: 2,
                fd_rejections: 1,
                slow_reads: 3,
                peer_drops: 2,
                peer_delays: 1,
                overload_samples: 8,
                brownout_delays: 4,
            },
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let text = report.to_json().render();
        let parsed = Json::parse(&text).expect("our own JSON must parse");
        let back = StatusReport::from_json(&parsed).expect("schema round trip");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_wrong_schema_version() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members[0].1 = Json::Num(99.0);
        }
        let err = StatusReport::from_json(&v).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "counters");
        }
        assert!(StatusReport::from_json(&v).is_err());
    }

    #[test]
    fn text_view_carries_the_same_numbers() {
        let report = sample_report();
        let text = report.to_text();
        assert!(
            text.contains("SWEB node n2 — policy sweb — engine reactor — DRAINING"),
            "{text}"
        );
        assert!(text.contains("zero-copy         42"), "{text}");
        assert!(text.contains("active-now        5"), "{text}");
        assert!(text.contains("deadline-overruns 6"), "{text}");
        assert!(text.contains("peer-fetches      11"), "{text}");
        assert!(text.contains("pushes-sent       4"), "{text}");
        assert!(text.contains("file cache: 50 hits, 40 misses"), "{text}");
        // Two load rows, one per peer, with tri-state health.
        assert!(text.contains("n0") && text.contains("n1"), "{text}");
        assert!(text.contains("alive") && text.contains("dead"), "{text}");
        assert!(text.contains("17 pkts dropped"), "{text}");
        assert!(text.contains("peer channel: 2 frames dropped, 1 frames delayed"), "{text}");
        assert!(
            text.contains("overload faults: 8 sojourn samples inflated, 4 brownout delays"),
            "{text}"
        );
        assert!(
            text.contains("overload control: on — shed level 2, retry-after 4s"),
            "{text}"
        );
        assert!(text.contains("sheds: 6 peer-serve, 5 dynamic, 3 static-miss, 0 static-hit"), "{text}");
        assert!(text.contains("breakers: [closed, open, closed] — 2 opens, 9 fast-fails"), "{text}");
        assert!(text.contains("retry budgets: 1 exhausted"), "{text}");
        // The per-shard breakdown: one row per shard, liveness and
        // backend included.
        assert!(text.contains("shards:"), "{text}");
        assert!(text.contains("s0     yes    uring    60        55        2         3"), "{text}");
        assert!(text.contains("s1     no     epoll    40        35        0         2"), "{text}");
    }

    #[test]
    fn from_json_rejects_missing_handlers() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "handlers");
        }
        assert!(StatusReport::from_json(&v).is_err(), "v6 requires the handlers array");
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "dynamic_cache");
        }
        assert!(StatusReport::from_json(&v).is_err(), "v6 requires the dynamic_cache block");
    }

    #[test]
    fn text_view_has_the_handler_table() {
        let text = sample_report().to_text();
        assert!(text.contains("handlers:"), "{text}");
        assert!(text.contains("burn        25        75        1800      4200      250000"), "{text}");
        assert!(text.contains("echo        10        0         30        90        5000"), "{text}");
        assert!(
            text.contains("dynamic cache: 75 hits, 35 misses, 4 expired, 2 evicted, 29 / 1024 entries"),
            "{text}"
        );
    }

    #[test]
    fn from_json_rejects_missing_overload() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "overload");
        }
        assert!(StatusReport::from_json(&v).is_err(), "v7 requires the overload block");
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            if let Some((_, Json::Obj(faults))) = members.iter_mut().find(|(k, _)| k == "faults") {
                faults.retain(|(k, _)| k != "overload_samples");
            }
        }
        assert!(StatusReport::from_json(&v).is_err(), "v7 requires the new fault counters");
    }

    #[test]
    fn from_json_rejects_missing_io_block() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "io");
        }
        assert!(StatusReport::from_json(&v).is_err(), "v8 requires the io block");
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            if let Some((_, Json::Obj(io))) = members.iter_mut().find(|(k, _)| k == "io") {
                io.retain(|(k, _)| k != "send_zc");
            }
        }
        assert!(StatusReport::from_json(&v).is_err(), "v8 requires the zero-copy counters");
    }

    #[test]
    fn text_view_has_the_io_block() {
        let text = sample_report().to_text();
        assert!(text.contains("io: 1234 syscalls, 10213 sqe, 16835 cqe, 15013 saved"), "{text}");
        assert!(
            text.contains(
                "zero-copy path: 880 write-fixed, 12 pool-exhausted, 44 send-zc, \
                 41 copies avoided, 7 sqe backlogged"
            ),
            "{text}"
        );
    }

    #[test]
    fn from_json_rejects_missing_shards() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Obj(members) = &mut v {
            members.retain(|(k, _)| k != "shards");
        }
        assert!(StatusReport::from_json(&v).is_err(), "v3 requires the shards array");
    }

    #[test]
    fn fault_block_hidden_when_nothing_injected() {
        let mut report = sample_report();
        report.faults = FaultCountsSnapshot::default();
        let text = report.to_text();
        assert!(!text.contains("injected faults"), "{text}");
        // But the JSON keeps the (zero) block: the schema is unconditional.
        let parsed = Json::parse(&report.to_json().render()).unwrap();
        let back = StatusReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
    }
}
