//! The `/sweb-status` administrative endpoint: a node's view of the
//! cluster (load table, counters), always served locally.

use std::sync::atomic::Ordering;

use sweb_cluster::NodeId;
use sweb_http::Response;

use crate::node::NodeShared;

/// Path of the status endpoint.
pub const STATUS_PATH: &str = "/sweb-status";

/// Render the status page for `shared`.
pub fn render(shared: &NodeShared) -> Response {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "SWEB node {} — policy {} — engine {}\n\nload table (this node's view):\n",
        shared.id,
        shared.broker.policy(),
        shared.engine.name(),
    ));
    out.push_str("node   cpu     disk    net     alive  age(ms)\n");
    let now = shared.now();
    {
        let loads = shared.loads.read();
        for i in 0..loads.len() {
            let id = NodeId(i as u32);
            let l = loads.load(id);
            let age = now.saturating_sub(loads.updated_at(id));
            out.push_str(&format!(
                "{:<6} {:<7.2} {:<7.2} {:<7.2} {:<6} {:.0}\n",
                id.to_string(),
                l.cpu,
                l.disk,
                l.net,
                loads.is_alive(id),
                age.as_millis_f64(),
            ));
        }
    }
    out.push_str(&format!(
        "\ncounters:\n  accepted          {}\n  served            {}\n  redirected-away   {}\n  \
         received-redirects {}\n  bad-requests      {}\n  accept-errors     {}\n  \
         shed-503          {}\n  evicted           {}\n  zero-copy         {}\n  \
         sendfile          {}\n  active-now        {}\n",
        shared.stats.accepted.load(Ordering::Relaxed),
        shared.stats.served.load(Ordering::Relaxed),
        shared.stats.redirected.load(Ordering::Relaxed),
        shared.stats.received_redirects.load(Ordering::Relaxed),
        shared.stats.bad_requests.load(Ordering::Relaxed),
        shared.stats.accept_errors.load(Ordering::Relaxed),
        shared.stats.shed.load(Ordering::Relaxed),
        shared.stats.evicted.load(Ordering::Relaxed),
        shared.stats.zero_copy.load(Ordering::Relaxed),
        shared.stats.sendfile.load(Ordering::Relaxed),
        shared.active.load(Ordering::Relaxed),
    ));
    out.push_str(&format!(
        "\nfile cache: {} hits, {} misses, {} collisions, {} / {} bytes, digest {} bits set\n",
        shared.file_cache.hits(),
        shared.file_cache.misses(),
        shared.file_cache.collisions(),
        shared.file_cache.used(),
        shared.file_cache.capacity(),
        shared.file_cache.digest().ones(),
    ));
    Response::ok(out, "text/plain")
}
