//! Overload-control suite: adaptive admission, circuit breakers, retry
//! budgets, and the slowloris defence, end to end on the live cluster.
//!
//! The degradation invariant under test extends the chaos suite's "no
//! request may hang": under overload every *shed* response must carry a
//! load-derived `Retry-After`, a blackholed peer must stop costing
//! forwards their full deadline once its breaker opens, and a client
//! dribbling header bytes must be evicted on the parse clock — on both
//! connection engines, and (where the kernel allows) on io_uring.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sweb_cluster::NodeId;
use sweb_core::{BreakerState, Policy};
use sweb_server::{
    client, ClusterConfig, Engine, Fault, FaultPlan, LiveCluster, ServerOptions, StatusReport,
    Window,
};

mod support;

/// Build a docroot with a few documents.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-overload-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ok.txt"), b"served under pressure").unwrap();
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("overload doc {i}").repeat(40))
            .unwrap();
    }
    dir
}

/// The plan seed: fixed for reproducibility, overridable for soak runs.
fn plan_seed() -> u64 {
    std::env::var("SWEB_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Fast failure detection so breaker force-opens fit in a test run.
fn overload_config(engine: Engine, plan: FaultPlan) -> ClusterConfig {
    ServerOptions::new()
        .policy(Policy::Sweb)
        .engine(engine)
        .loadd_timing(100, 500)
        .fault_plan(Some(plan))
        .build()
}

/// Poll until `check` passes or the deadline expires; panics with `what`
/// on expiry.
fn await_true(deadline: Duration, what: &str, mut check: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out after {deadline:?} waiting for: {what}");
}

/// Fetch node `i`'s status report through the JSON API (schema-checked).
fn status(cluster: &LiveCluster, i: usize) -> StatusReport {
    let resp =
        client::get(&format!("{}/sweb-status?format=json", cluster.base_url(i))).unwrap();
    let json = sweb_telemetry::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let report = StatusReport::from_json(&json).expect("status must parse");
    support::assert_current_schema(&report);
    report
}

macro_rules! engine_tests {
    ($($name:ident),* $(,)?) => {
        mod reactor {
            $(#[test] fn $name() { super::$name(super::Engine::Reactor); })*
        }
        mod threaded {
            $(#[test] fn $name() { super::$name(super::Engine::ThreadPerConn); })*
        }
    };
}

engine_tests!(
    injected_overload_sheds_with_retry_after,
    controller_off_is_the_static_baseline,
    slowloris_dribble_is_evicted_on_the_parse_clock,
    open_breaker_stops_paying_the_peer_deadline,
    crash_under_overload_keeps_every_outcome_definite,
);

/// A synthetic standing queue (the `overload` fault inflates every
/// sojourn sample by 500 ms against the 5 ms CoDel target) must drive
/// the controller to shedding within a few 100 ms windows — and every
/// shed response must carry a load-derived `Retry-After`.
fn injected_overload_sheds_with_retry_after(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::Overload { node: 0, sojourn_us: 500_000, window: Window::ALWAYS });
    let dir = docroot(&format!("shed-{}", engine.name()));
    let cluster = LiveCluster::start(1, dir, overload_config(engine, plan)).unwrap();
    let url = format!("{}/ok.txt", cluster.base_url(0));

    let mut shed = None;
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        match resp.status {
            200 => std::thread::sleep(Duration::from_millis(10)),
            503 => {
                shed = Some(resp);
                break;
            }
            s => panic!("unexpected status {s} under injected overload"),
        }
    }
    let shed = shed.expect("controller never escalated to shedding");
    let retry_after: u64 = shed
        .headers
        .get("retry-after")
        .expect("shed response must carry Retry-After")
        .parse()
        .expect("Retry-After must be numeric");
    assert!((1..=8).contains(&retry_after), "Retry-After out of range: {retry_after}");

    // The admin endpoints are never shed: the status API answers even at
    // level 3, and its v7 overload block shows what just happened.
    let report = status(&cluster, 0);
    assert!(report.overload.enabled);
    assert!(report.overload.shed_level >= 2, "level {} after sustained overload", report.overload.shed_level);
    assert!(
        report.overload.sheds_by_class.iter().sum::<u64>() >= 1,
        "sheds_by_class empty: {:?}",
        report.overload.sheds_by_class
    );
    assert!(report.counters.shed >= 1);
    assert!(report.faults.overload_samples >= 1, "the fault never inflated a sample");
    cluster.shutdown();
}

/// The A/B baseline: the same injected overload with `--overload off`
/// never sheds by admission — the static path (`max_conns`) is all
/// that's left, and these sequential requests never hit it.
fn controller_off_is_the_static_baseline(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::Overload { node: 0, sojourn_us: 500_000, window: Window::ALWAYS });
    let dir = docroot(&format!("baseline-{}", engine.name()));
    let cfg = ServerOptions::from_config(overload_config(engine, plan))
        .overload_control(false)
        .build();
    let cluster = LiveCluster::start(1, dir, cfg).unwrap();
    let url = format!("{}/ok.txt", cluster.base_url(0));

    for i in 0..30 {
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200, "request {i} shed with the controller off");
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = status(&cluster, 0);
    assert!(!report.overload.enabled);
    assert_eq!(report.overload.shed_level, 0);
    assert_eq!(report.overload.sheds_by_class, [0, 0, 0, 0]);
    cluster.shutdown();
}

/// A slowloris client dribbling one header byte at a time must be
/// evicted on the absolute parse deadline (budget/4), not kept alive by
/// its own trickle until the full read timeout.
fn slowloris_dribble_is_evicted_on_the_parse_clock(engine: Engine) {
    let dir = docroot(&format!("loris-{}", engine.name()));
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(engine)
        .request_budget(Duration::from_secs(1)) // parse budget: 250 ms
        .start(1, dir)
        .unwrap();
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();
    let evicted_before = cluster.node(0).stats.evicted.get();

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    stream.write_all(b"GET /ok.txt HTTP/1.0\r\n").unwrap();
    let t0 = Instant::now();
    let dribble = b"X-Slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
    let mut closed = false;
    'outer: for byte in dribble.iter().cycle() {
        // A write can succeed into the socket buffer after the server
        // closes; the read is the reliable close detector.
        let _ = stream.write_all(std::slice::from_ref(byte));
        let mut buf = [0u8; 64];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) if t0.elapsed() > Duration::from_secs(4) => break 'outer,
            Ok(0) => {
                closed = true;
                break 'outer;
            }
            Ok(_) => {} // an eviction response (503/400) still counts as closed next read
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if t0.elapsed() > Duration::from_secs(4) {
                    break 'outer;
                }
            }
            Err(_) => {
                closed = true;
                break 'outer;
            }
        }
    }
    assert!(closed, "slowloris connection survived {:?}", t0.elapsed());
    assert!(
        t0.elapsed() < Duration::from_millis(900),
        "eviction took {:?}; the parse deadline (250 ms) never fired",
        t0.elapsed()
    );
    await_true(Duration::from_secs(2), "eviction counted", || {
        cluster.node(0).stats.evicted.get() > evicted_before
    });
    // The server is unharmed: a well-formed request still answers.
    let resp = client::get(&format!("http://{addr}/ok.txt")).unwrap();
    assert_eq!(resp.status, 200);
    cluster.shutdown();
}

/// A peer whose channel blackholes (every transfer delayed past the
/// request budget) costs each forward its full deadline — until the
/// breaker opens. After that, requests to the same documents must come
/// back fast: the broker reprices the peer out and `fetch_via_peer`
/// refuses up front instead of sleeping into the injected delay.
fn open_breaker_stops_paying_the_peer_deadline(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::PeerDelay { from: 1, to: 0, delay_ms: 1_500, window: Window::ALWAYS });
    let dir = docroot(&format!("breaker-{}", engine.name()));
    let mut cfg = overload_config(engine, plan);
    cfg.policy = Policy::FileLocality; // deterministic pull targets: the home
    cfg.sweb.peer_transfer = true;
    cfg.request_budget = Duration::from_millis(500);
    let cluster = LiveCluster::start(2, dir, cfg).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)));

    // Phase 1: drive forwards into the delayed channel until the breaker
    // trips (3 strikes). Every request still ends definitively.
    let t0 = Instant::now();
    while cluster.node(0).breakers.state(NodeId(1)) != BreakerState::Open {
        assert!(t0.elapsed() < Duration::from_secs(20), "breaker never opened");
        for i in 0..8 {
            let url = format!("{}/doc{i}.txt", cluster.base_url(0));
            let resp = client::get_with_timeout(&url, Duration::from_secs(10)).unwrap();
            assert!(
                resp.status == 200 || resp.status == 503 || resp.status == 302,
                "doc{i}: {}",
                resp.status
            );
            if cluster.node(0).breakers.state(NodeId(1)) == BreakerState::Open {
                break;
            }
        }
    }
    assert!(cluster.node(0).breakers.opens_total() >= 1);

    // Phase 2: with the breaker open, the same documents must be served
    // without paying the 1.5 s injected delay or the 500 ms budget —
    // the peer is repriced out before any channel work starts.
    for i in 0..8 {
        let url = format!("{}/doc{i}.txt", cluster.base_url(0));
        let t1 = Instant::now();
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        let elapsed = t1.elapsed();
        assert_eq!(resp.status, 200, "doc{i} after breaker opened");
        assert!(
            elapsed < Duration::from_millis(400),
            "doc{i} still paying the blackholed peer: {elapsed:?}"
        );
    }
    let report = status(&cluster, 0);
    assert_eq!(report.overload.breakers[1], "open");
    assert!(report.overload.breaker_opens >= 1);
    cluster.shutdown();
}

/// Seeded chaos composition: a crashed peer *and* injected overload at
/// once. Every request reaches a definite outcome, every shed carries
/// `Retry-After`, and the dead peer's breaker is forced open by failure
/// detection (no forward has to pay to find out).
fn crash_under_overload_keeps_every_outcome_definite(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::Overload { node: 0, sojourn_us: 100_000, window: Window::between(600, 2_000) })
        .with(Fault::Crash { node: 1, at_ms: 300 })
        .with(Fault::Revive { node: 1, at_ms: 2_500 });
    let dir = docroot(&format!("crash-{}", engine.name()));
    let cluster = LiveCluster::start(2, dir, overload_config(engine, plan)).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)));

    let mut sheds_with_header = 0u32;
    let mut outcomes = 0u32;
    while cluster.chaos().now_ms() < 2_300 {
        // Scripted crash/revive ops fire from the workload loop, not a
        // background thread — drive them to their due time.
        cluster.drive_scripted();
        let url = format!("{}/doc{}.txt", cluster.base_url(0), outcomes % 8);
        match client::get_with_timeout(&url, Duration::from_secs(5)) {
            Ok(resp) => {
                assert!(
                    resp.status == 200 || resp.status == 503,
                    "unexpected status {}",
                    resp.status
                );
                if resp.status == 503 {
                    assert!(
                        resp.headers.get("retry-after").is_some(),
                        "503 without Retry-After under overload"
                    );
                    sheds_with_header += 1;
                }
            }
            Err(client::ClientError::Io(e)) => assert!(
                e.kind() != std::io::ErrorKind::TimedOut
                    && e.kind() != std::io::ErrorKind::WouldBlock,
                "request hung: {e}"
            ),
            Err(client::ClientError::BadResponse(_)) => {} // slammed mid-response: definite
            Err(e) => panic!("unexpected failure: {e}"),
        }
        outcomes += 1;
        std::thread::sleep(Duration::from_millis(15));
    }
    assert!(outcomes >= 20, "only {outcomes} requests completed");
    assert!(sheds_with_header >= 1, "overload window never shed");
    // The crash was detected and the breaker force-opened without a
    // single forward having to time out against the corpse.
    assert!(cluster.node(0).breakers.opens_total() >= 1, "dead peer's breaker never opened");
    cluster.shutdown();
}

/// The uring backend runs the same admission path as epoll: the
/// controller sheds with `Retry-After` under injected overload. Skips
/// (with a note) on kernels without io_uring.
#[test]
fn uring_injected_overload_sheds_with_retry_after() {
    match sweb_reactor::sys::Poller::strict(sweb_reactor::IoBackend::Uring) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("overload tests: skipping uring variant, io_uring unavailable: {e}");
            return;
        }
    }
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::Overload { node: 0, sojourn_us: 500_000, window: Window::ALWAYS });
    let dir = docroot("shed-uring");
    let mut cfg = overload_config(Engine::Reactor, plan);
    cfg.io_backend = sweb_reactor::IoBackend::Uring;
    cfg.shards = 1;
    let cluster = LiveCluster::start(1, dir, cfg).unwrap();
    let url = format!("{}/ok.txt", cluster.base_url(0));

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut shed = None;
    while Instant::now() < deadline {
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        if resp.status == 503 {
            shed = Some(resp);
            break;
        }
        assert_eq!(resp.status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    let shed = shed.expect("uring node never shed under injected overload");
    assert!(shed.headers.get("retry-after").is_some());
    let report = status(&cluster, 0);
    assert!(report.overload.shed_level >= 1);
    assert_eq!(report.shards[0].io_backend, "uring");
    cluster.shutdown();
}
