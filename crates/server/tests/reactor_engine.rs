//! Cluster-level tests of behavior only the reactor engine provides:
//! admission control, eviction counters on the status page, and a bounded
//! thread count under high connection concurrency.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sweb_core::Policy;
use sweb_server::{client, Engine, ServerOptions};

fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-rtest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("index.html"), "<html>Alexandria</html>").unwrap();
    dir
}

/// Threads of this test process, from `/proc/self/status` (Linux only;
/// `None` elsewhere, letting callers skip the bound check).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn admission_control_sheds_with_503_and_counts_it() {
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .max_conns(4)
        .shards(1) // the cap is divided across shards; pin for determinism
        .start(1, docroot("shed"))
        .unwrap();
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();

    // Fill the admission cap with idle connections.
    let idle: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(&addr).unwrap()).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while cluster.node(0).stats.active.get() < 4 {
        assert!(std::time::Instant::now() < deadline, "cap never filled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // One more is turned away with 503.
    let mut extra = TcpStream::connect(&addr).unwrap();
    extra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = extra.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.0 503"), "expected shed, got {out:?}");
    assert!(cluster.node(0).stats.shed.get() >= 1);

    // Freeing a slot restores service, and the status page reports the
    // shed (the admission signal the load vector reflects via `active`).
    drop(idle);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while cluster.node(0).stats.active.get() > 0 {
        assert!(std::time::Instant::now() < deadline, "idle conns never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = client::get(&format!("{}/sweb-status", cluster.base_url(0))).unwrap();
    let text = String::from_utf8(status.body).unwrap();
    assert!(text.contains("engine reactor"), "{text}");
    assert!(text.contains("shed-503"), "{text}");
    assert!(text.contains("accept-errors"), "{text}");
    assert!(text.contains("evicted"), "{text}");
    cluster.shutdown();
}

#[test]
fn many_concurrent_connections_with_bounded_threads() {
    const CONNS: usize = 256;
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .start(1, docroot("many"))
        .unwrap();
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();
    let before = process_threads();

    // Open many connections and hold them all open concurrently.
    let mut conns: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    let during = process_threads();

    // Every one of them gets served.
    for s in &mut conns {
        s.write_all(b"GET /index.html HTTP/1.0\r\n\r\n").unwrap();
    }
    let mut ok = 0;
    for s in &mut conns {
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        if out.starts_with("HTTP/1.0 200") {
            ok += 1;
        }
    }
    assert_eq!(ok, CONNS, "every concurrent connection must be served");

    // The engine multiplexes: thread count must not scale with the number
    // of open connections (thread-per-conn would add one each).
    if let (Some(before), Some(during)) = (before, during) {
        let grown = during.saturating_sub(before);
        assert!(
            grown < CONNS / 8,
            "thread count grew by {grown} for {CONNS} connections — not multiplexing"
        );
    }
    cluster.shutdown();
}

/// Deterministic pseudo-random payload, so truncation and reordering are
/// both caught by a byte-for-byte comparison.
fn payload(len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    let mut x: u64 = 0x5eed_cafe;
    for b in out.iter_mut() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    out
}

#[test]
fn large_cached_file_served_intact_with_zero_copy() {
    // The CI smoke target: a 1.5 MB document that fits in the cache must
    // come back byte-identical through the reactor's writev path, with
    // the body leaving as shared `Bytes` (no per-request copy) both on
    // the cold read and on the cache hit.
    let dir = docroot("zcopy");
    let body = payload(1_500_000);
    std::fs::write(dir.join("big.bin"), &body).unwrap();
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .start(1, dir)
        .unwrap();
    for pass in 0..2 {
        let resp = client::get(&format!("{}/big.bin", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200, "pass {pass}");
        assert_eq!(resp.body.len(), body.len(), "pass {pass}: truncated body");
        assert!(resp.body == body, "pass {pass}: corrupted body");
    }
    let node = cluster.node(0);
    assert!(node.stats.zero_copy.get() >= 2, "bodies must go zero-copy");
    assert_eq!(node.stats.sendfile.get(), 0, "cacheable file must not stream");
    assert_eq!(node.file_cache.hits(), 1, "second fetch must hit the cache");
    cluster.shutdown();
}

#[test]
fn oversized_file_streams_intact() {
    // A document larger than the whole cache takes the sendfile path
    // (worker-pool read fallback off-Linux) and must still arrive
    // byte-identical, without displacing anything in the cache.
    let dir = docroot("stream");
    let body = payload(1 << 20);
    std::fs::write(dir.join("huge.bin"), &body).unwrap();
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .file_cache_bytes(256 << 10)
        .start(1, dir)
        .unwrap();
    let resp = client::get(&format!("{}/huge.bin", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body == body, "streamed body corrupted or truncated");
    let node = cluster.node(0);
    if cfg!(target_os = "linux") {
        assert!(node.stats.sendfile.get() >= 1, "expected sendfile transmit");
    }
    assert_eq!(node.file_cache.used(), 0, "oversized file must not enter the cache");
    cluster.shutdown();
}

#[test]
fn loadd_gossips_cache_digests_across_the_mesh() {
    // Residency on one node must become visible in every peer's load
    // table via the v2 loadd packets, so the cost model can price the
    // holder's cache hit (§3.2 t_data at RAM speed).
    use sweb_cluster::NodeId;
    use sweb_server::file_cache::key_of;

    let dir = docroot("gossip");
    std::fs::write(dir.join("hot.html"), "cached and gossiped").unwrap();
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin) // never redirects: the fetch pins residency
        .engine(Engine::Reactor)
        .start(2, dir)
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));

    let resp = client::get(&format!("{}/hot.html", cluster.base_url(1))).unwrap();
    assert_eq!(resp.status, 200);
    assert!(cluster.node(1).file_cache.resident("/hot.html"));

    // Node 0 learns of node 1's residency within a few loadd periods.
    let key = key_of("/hot.html");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if cluster.node(0).loads.read().digest(NodeId(1)).contains(key) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "digest never reached node 0");
        std::thread::sleep(Duration::from_millis(20));
    }
    // A file nobody fetched is not advertised.
    assert!(
        !cluster.node(0).loads.read().digest(NodeId(1)).contains(key_of("/cold.html")),
        "digest advertises a non-resident file"
    );
    cluster.shutdown();
}

#[test]
fn reactor_cluster_follows_redirects_under_locality() {
    // The §3.2 redirect path, end to end, specifically on the reactor: a
    // doc homed off node 0 must 302 once and be served by its home.
    let dir = docroot("redir");
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("doc {i}")).unwrap();
    }
    let cluster = ServerOptions::new()
        .policy(Policy::FileLocality)
        .engine(Engine::Reactor)
        .start(3, dir)
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    let mut redirected = 0;
    for i in 0..8 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
        redirected += resp.redirects;
    }
    assert!(redirected > 0, "at least one of 8 hashed docs must bounce off node 0");
    cluster.shutdown();
}
