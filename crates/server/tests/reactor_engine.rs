//! Cluster-level tests of behavior only the reactor engine provides:
//! admission control, eviction counters on the status page, and a bounded
//! thread count under high connection concurrency.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use sweb_core::Policy;
use sweb_server::{client, ClusterConfig, Engine, LiveCluster};

fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-rtest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("index.html"), "<html>Alexandria</html>").unwrap();
    dir
}

/// Threads of this test process, from `/proc/self/status` (Linux only;
/// `None` elsewhere, letting callers skip the bound check).
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn admission_control_sheds_with_503_and_counts_it() {
    let cfg = ClusterConfig {
        policy: Policy::RoundRobin,
        engine: Engine::Reactor,
        max_conns: 4,
        ..ClusterConfig::default()
    };
    let cluster = LiveCluster::start(1, docroot("shed"), cfg).unwrap();
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();

    // Fill the admission cap with idle connections.
    let idle: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(&addr).unwrap()).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while cluster.node(0).active.load(Ordering::Relaxed) < 4 {
        assert!(std::time::Instant::now() < deadline, "cap never filled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // One more is turned away with 503.
    let mut extra = TcpStream::connect(&addr).unwrap();
    extra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = extra.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.0 503"), "expected shed, got {out:?}");
    assert!(cluster.node(0).stats.shed.load(Ordering::Relaxed) >= 1);

    // Freeing a slot restores service, and the status page reports the
    // shed (the admission signal the load vector reflects via `active`).
    drop(idle);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while cluster.node(0).active.load(Ordering::Relaxed) > 0 {
        assert!(std::time::Instant::now() < deadline, "idle conns never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = client::get(&format!("{}/sweb-status", cluster.base_url(0))).unwrap();
    let text = String::from_utf8(status.body).unwrap();
    assert!(text.contains("engine reactor"), "{text}");
    assert!(text.contains("shed-503"), "{text}");
    assert!(text.contains("accept-errors"), "{text}");
    assert!(text.contains("evicted"), "{text}");
    cluster.shutdown();
}

#[test]
fn many_concurrent_connections_with_bounded_threads() {
    const CONNS: usize = 256;
    let cfg = ClusterConfig {
        policy: Policy::RoundRobin,
        engine: Engine::Reactor,
        ..ClusterConfig::default()
    };
    let cluster = LiveCluster::start(1, docroot("many"), cfg).unwrap();
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();
    let before = process_threads();

    // Open many connections and hold them all open concurrently.
    let mut conns: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    let during = process_threads();

    // Every one of them gets served.
    for s in &mut conns {
        s.write_all(b"GET /index.html HTTP/1.0\r\n\r\n").unwrap();
    }
    let mut ok = 0;
    for s in &mut conns {
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        if out.starts_with("HTTP/1.0 200") {
            ok += 1;
        }
    }
    assert_eq!(ok, CONNS, "every concurrent connection must be served");

    // The engine multiplexes: thread count must not scale with the number
    // of open connections (thread-per-conn would add one each).
    if let (Some(before), Some(during)) = (before, during) {
        let grown = during.saturating_sub(before);
        assert!(
            grown < CONNS / 8,
            "thread count grew by {grown} for {CONNS} connections — not multiplexing"
        );
    }
    cluster.shutdown();
}

#[test]
fn reactor_cluster_follows_redirects_under_locality() {
    // The §3.2 redirect path, end to end, specifically on the reactor: a
    // doc homed off node 0 must 302 once and be served by its home.
    let cfg = ClusterConfig {
        policy: Policy::FileLocality,
        engine: Engine::Reactor,
        ..ClusterConfig::default()
    };
    let dir = docroot("redir");
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("doc {i}")).unwrap();
    }
    let cluster = LiveCluster::start(3, dir, cfg).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    let mut redirected = 0;
    for i in 0..8 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
        redirected += resp.redirects;
    }
    assert!(redirected > 0, "at least one of 8 hashed docs must bounce off node 0");
    cluster.shutdown();
}
