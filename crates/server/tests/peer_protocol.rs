//! Robustness tests for the cluster-internal peer transfer channel: the
//! wire protocol must shrug off garbage, version skew, and peers dying
//! mid-frame — counted, degraded, never fatal and never hung.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sweb_core::Policy;
use sweb_peer::{fetch_err, read_frame, write_frame, Frame, PeerPool};
use sweb_server::file_cache::key_of;
use sweb_server::{client, Engine, LiveCluster, ServerOptions};

fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-peerproto-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ok.txt"), b"peer channel payload").unwrap();
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("peer doc {i}").repeat(40))
            .unwrap();
    }
    dir
}

fn start(tag: &str, n: usize) -> (LiveCluster, std::path::PathBuf) {
    let dir = docroot(tag);
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .peer_transfer(true)
        .start(n, dir.clone())
        .unwrap();
    (cluster, dir)
}

/// The peer listener's TCP address for node `i`.
fn peer_addr(cluster: &LiveCluster, i: usize) -> std::net::SocketAddr {
    cluster.node(i).peer_tcp[i]
}

fn await_counter(deadline: Duration, what: &str, mut read: impl FnMut() -> u64, want: u64) {
    let t0 = Instant::now();
    while read() < want {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}: {} < {want}", read());
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Garbage on the peer port: wrong magic, an unknown protocol version,
/// an oversized length prefix, and an unprompted reply frame. Every one
/// increments `peer_frames_bad` and costs only that connection — the
/// node keeps serving both its peer channel and its HTTP clients.
#[test]
fn garbled_peer_frames_counted_never_fatal() {
    let (cluster, _dir) = start("garble", 1);
    let addr = peer_addr(&cluster, 0);
    let bad = |frame: &[u8]| {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(frame).unwrap();
        // The server must close on us (not reply, not hang).
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(rest.is_empty(), "no reply expected to a garbled frame, got {rest:?}");
    };
    // Wrong magic.
    bad(b"XXxxxxxxxxxx");
    // Version skew: a frame from a future protocol revision.
    bad(&[b'S', b'P', 99, 1, 4, 0, 0, 0, 1, 2, 3, 4]);
    // A length prefix beyond MAX_PAYLOAD.
    bad(&[b'S', b'P', 1, 1, 0xff, 0xff, 0xff, 0xff]);
    // An unprompted reply opcode (PUSH_OK out of nowhere).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, &Frame::PushOk { accepted: true }).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(rest.is_empty());
    }
    await_counter(
        Duration::from_secs(5),
        "bad peer frames counted",
        || cluster.node(0).stats.peer_frames_bad.get(),
        4,
    );

    // The listener is unharmed: a well-formed FETCH on a fresh connection
    // returns the document, and HTTP clients never noticed.
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut s,
        &Frame::FetchReq {
            file: key_of("/ok.txt").0,
            trace: "t-proto".to_string(),
            path: "/ok.txt".to_string(),
        },
    )
    .unwrap();
    match read_frame(&mut s).unwrap() {
        Frame::FetchOk { body, .. } => assert_eq!(body, b"peer channel payload"),
        other => panic!("expected FetchOk, got {other:?}"),
    }
    let resp = client::get(&format!("{}/ok.txt", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    cluster.shutdown();
}

/// FETCH-side validation: traversal paths, key/path mismatches, and
/// missing documents come back as typed errors, not bodies and not
/// connection drops.
#[test]
fn fetch_rejects_bad_paths_with_typed_errors() {
    let (cluster, _dir) = start("fetchval", 1);
    let addr = peer_addr(&cluster, 0);
    let fetch = |file: u64, path: &str| -> Frame {
        let mut s = TcpStream::connect(addr).unwrap();
        let req =
            Frame::FetchReq { file, trace: String::new(), path: path.to_string() };
        write_frame(&mut s, &req).unwrap();
        read_frame(&mut s).unwrap()
    };
    // A key that does not match the path is a protocol violation.
    assert_eq!(
        fetch(0xdead_beef, "/ok.txt"),
        Frame::FetchErr { code: fetch_err::NOT_FOUND },
        "key/path mismatch must be refused"
    );
    // Traversal is refused even with a correct key.
    let evil = "/../etc/passwd";
    assert_eq!(fetch(key_of(evil).0, evil), Frame::FetchErr { code: fetch_err::NOT_FOUND });
    // A valid key for a document that does not exist.
    assert_eq!(
        fetch(key_of("/missing.txt").0, "/missing.txt"),
        Frame::FetchErr { code: fetch_err::NOT_FOUND }
    );
    cluster.shutdown();
}

/// A peer dying mid-FETCH — header sent, body never arriving — must fail
/// the pull within its deadline, not hang the puller.
#[test]
fn mid_stream_death_fails_fast_never_hangs() {
    // A fake peer that accepts, reads the request, sends half a reply
    // header, and drops the connection.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Detached on purpose: the thread blocks in accept() until the test
    // process exits; joining it would be the hang this test forbids.
    std::thread::spawn(move || {
        while let Ok((mut s, _)) = listener.accept() {
            let _ = read_frame(&mut s);
            let _ = s.write_all(&[b'S', b'P', 1, 2]); // half a FETCH_OK header
            drop(s); // mid-stream death
        }
    });
    let pool = PeerPool::new(vec![addr]);
    let t0 = Instant::now();
    let result = pool.fetch(0, 1234, "/x.txt", "t-dead", Duration::from_secs(2));
    assert!(result.is_err(), "a half-written reply must be an error, got {result:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "pull must fail within its deadline, took {:?}",
        t0.elapsed()
    );
}

/// Cluster-level mid-death: with the remote home hard-killed and marked
/// Dead, requests for its documents are served locally — no pull, no
/// 302 at a corpse, no hang.
#[test]
fn dead_peer_is_excluded_from_forward_targets() {
    let dir = docroot("deadpeer");
    let cluster = ServerOptions::new()
        .policy(Policy::FileLocality)
        .engine(Engine::Reactor)
        .peer_transfer(true)
        .loadd_timing(100, 500)
        .start(2, dir.clone())
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)));

    cluster.kill(1);
    // Wait out the staleness window: node 0 must mark node 1 Dead.
    let t0 = Instant::now();
    while cluster.node(0).loads.read().is_alive(sweb_cluster::NodeId(1)) {
        assert!(t0.elapsed() < Duration::from_secs(5), "victim never marked Dead");
        std::thread::sleep(Duration::from_millis(20));
    }
    let pulls_before = cluster.node(0).stats.peer_fetches.get();
    for i in 0..8 {
        let resp = client::get_with_timeout(
            &format!("{}/doc{i}.txt", cluster.base_url(0)),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "doc{i}");
        assert_eq!(resp.redirects, 0, "no 302 may aim at a dead node");
        assert_eq!(resp.served_by, Some(0));
        assert_eq!(resp.body, std::fs::read(dir.join(format!("doc{i}.txt"))).unwrap());
    }
    assert_eq!(
        cluster.node(0).stats.peer_fetches.get(),
        pulls_before,
        "a Dead home must be excluded from pull sources entirely"
    );
    cluster.shutdown();
}

/// Property: bodies PUSHed over the peer channel come back byte-identical
/// through the striped cache, across sizes and patterns. The on-disk
/// decoy differs from the pushed body, so a matching response *proves*
/// the bytes travelled peer channel → cache → HTTP, not disk → HTTP.
#[test]
fn pushed_bodies_read_back_byte_identical_over_http() {
    let (cluster, dir) = start("pushprop", 1);
    let addr = peer_addr(&cluster, 0);
    let pool = PeerPool::new(vec![addr]);

    // Deterministic pseudo-random bytes (splitmix64 stream).
    let body_of = |seed: u64, len: usize| -> Vec<u8> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as u8
            })
            .collect()
    };

    for (case, len) in [1usize, 37, 4096, 100_000].into_iter().enumerate() {
        let path = format!("/pushed{case}.bin");
        let rel = &path[1..];
        // The decoy on disk shares the path and mtime but not the bytes.
        std::fs::write(dir.join(rel), vec![b'D'; len]).unwrap();
        let mtime = std::fs::metadata(dir.join(rel)).unwrap().modified().unwrap();
        let body = body_of(0xC0FFEE + case as u64, len);
        let accepted = pool
            .push(0, key_of(&path).0, &path, mtime, &body, Duration::from_secs(5))
            .unwrap();
        assert!(accepted, "{path}: push must be accepted");
        let resp = client::get(&format!("{}{path}", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200, "{path}");
        assert_eq!(resp.body, body, "{path}: pushed body must serve byte-identical from RAM");
    }
    await_counter(
        Duration::from_secs(2),
        "pushes counted",
        || cluster.node(0).stats.pushes_received.get(),
        4,
    );
    // A PUSH whose key does not match its path is declined and counted.
    let declined = pool
        .push(0, 0x1234, "/mismatch.bin", std::time::SystemTime::now(), b"x", Duration::from_secs(5))
        .unwrap();
    assert!(!declined, "key/path mismatch must be declined");
    assert!(cluster.node(0).stats.peer_frames_bad.get() >= 1);
    cluster.shutdown();
}
