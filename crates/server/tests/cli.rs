//! End-to-end tests of the CLI binaries: spawn a real `swebd` process and
//! drive it with a real `swebload` process.

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("index.html"), "<h1>cli test</h1>").unwrap();
    std::fs::write(dir.join("map.gif"), vec![0x47u8; 64_000]).unwrap();
    dir
}

/// A port base unlikely to collide across test processes.
fn port_base() -> u16 {
    20000 + (std::process::id() % 20000) as u16
}

struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn wait_for_http(port: u16, deadline: Duration) -> bool {
    let t0 = std::time::Instant::now();
    while t0.elapsed() < deadline {
        if std::net::TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

#[test]
fn swebd_serves_and_swebload_reports() {
    let dir = docroot("e2e");
    let base = port_base();
    let daemon = Daemon(
        Command::new(env!("CARGO_BIN_EXE_swebd"))
            .args([
                "--nodes",
                "2",
                "--docroot",
                dir.to_str().unwrap(),
                "--policy",
                "sweb",
                "--port-base",
                &base.to_string(),
                "--loadd-ms",
                "200",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn swebd"),
    );
    assert!(wait_for_http(base, Duration::from_secs(10)), "swebd never came up");
    assert!(wait_for_http(base + 1, Duration::from_secs(10)));

    // Sanity over the library client first.
    let resp = sweb_server::client::get(&format!("http://127.0.0.1:{base}/index.html")).unwrap();
    assert_eq!(resp.status, 200);

    // Now the load generator binary.
    let out = Command::new(env!("CARGO_BIN_EXE_swebload"))
        .args([
            &format!("http://127.0.0.1:{base}/map.gif"),
            &format!("http://127.0.0.1:{}/index.html", base + 1),
            "--rps",
            "20",
            "--duration",
            "2",
            "--clients",
            "4",
        ])
        .output()
        .expect("run swebload");
    assert!(out.status.success(), "swebload failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("completed:  40"), "all 40 requests must complete:\n{text}");
    assert!(text.contains("failed:     0"), "{text}");
    assert!(text.contains("p95:"), "{text}");

    // Status endpoint over the daemon too.
    let status =
        sweb_server::client::get(&format!("http://127.0.0.1:{}/sweb-status", base + 1)).unwrap();
    assert_eq!(status.status, 200);
    let body = String::from_utf8(status.body).unwrap();
    assert!(body.contains("SWEB node n1"), "{body}");

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swebd_rejects_bad_oracle_config() {
    let dir = docroot("badconf");
    let conf = dir.join("oracle.conf");
    std::fs::write(&conf, "not-a-prefix 1.0 2.0\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_swebd"))
        .args([
            "--nodes",
            "1",
            "--docroot",
            dir.to_str().unwrap(),
            "--oracle",
            conf.to_str().unwrap(),
        ])
        .output()
        .expect("run swebd");
    assert!(!out.status.success(), "malformed oracle config must be fatal");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 1"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swebd_accepts_shipped_example_oracle() {
    let dir = docroot("goodconf");
    let base = port_base() + 100;
    let example = concat!(env!("CARGO_MANIFEST_DIR"), "/../../conf/oracle.conf.example");
    let daemon = Daemon(
        Command::new(env!("CARGO_BIN_EXE_swebd"))
            .args([
                "--nodes",
                "1",
                "--docroot",
                dir.to_str().unwrap(),
                "--port-base",
                &base.to_string(),
                "--oracle",
                example,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn swebd"),
    );
    assert!(wait_for_http(base, Duration::from_secs(10)));
    let resp = sweb_server::client::get(&format!("http://127.0.0.1:{base}/index.html")).unwrap();
    assert_eq!(resp.status, 200);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swebd_usage_on_bad_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_swebd"))
        .args(["--bogus"])
        .output()
        .expect("run swebd");
    assert!(!out.status.success());
    let mut err = String::new();
    let _ = out.stderr.as_slice().read_to_string(&mut err);
    assert!(err.contains("usage:"), "{err}");
}
