//! Chaos suite: deterministic fault injection against the live cluster.
//!
//! Every scenario runs on both connection engines. The invariant under
//! test is always the same: **no request may hang** — whatever faults are
//! active, a client with a sane timeout gets a definite outcome (a 2xx/
//! 3xx/5xx response, a refused connection, or a clean close), and the
//! cluster's failure-domain machinery (Suspect/Dead marking, drain
//! eviction, deadline shedding) reacts within its documented windows.
//!
//! Each test writes its `FaultPlan` to `target/chaos/` before running, so
//! a CI failure leaves a replayable artifact (`swebd --fault-plan FILE`).
//! `SWEB_CHAOS_SEED` overrides the plan seed for soak runs.

use std::io::ErrorKind;
use std::time::{Duration, Instant};

use sweb_cluster::NodeId;
use sweb_core::{PeerHealth, Policy};
use sweb_server::{
    client, AccessLog, ClusterConfig, Engine, Fault, FaultPlan, LiveCluster, ServerOptions,
    StatusReport, Window,
};

mod support;

/// Build a docroot with a few documents.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ok.txt"), b"definitely served").unwrap();
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("chaos doc {i}").repeat(50))
            .unwrap();
    }
    dir
}

/// The plan seed: fixed for reproducibility, overridable for soak runs.
fn plan_seed() -> u64 {
    std::env::var("SWEB_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Persist the plan where CI can pick it up on failure (`target/chaos/`),
/// and prove the on-disk artifact round-trips to the plan we are running.
fn save_plan(name: &str, engine: Engine, plan: &FaultPlan) {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "../../target".to_string());
    let dir = std::path::Path::new(&target).join("chaos");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.plan", engine.name()));
    std::fs::write(&path, plan.to_text()).unwrap();
    let back = FaultPlan::from_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(&back, plan, "saved plan must replay identically");
}

/// Short gossip windows so failure detection fits in a test run: Suspect
/// after 100 ms of silence, Dead after 500 ms.
fn chaos_config(engine: Engine, plan: FaultPlan) -> ClusterConfig {
    ServerOptions::new()
        .policy(Policy::Sweb)
        .engine(engine)
        .loadd_timing(100, 500)
        .fault_plan(Some(plan))
        .build()
}

/// Poll until `check` passes or the deadline expires; panics with `what`
/// on expiry. Returns how long it took.
fn await_true(deadline: Duration, what: &str, mut check: impl FnMut() -> bool) -> Duration {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if check() {
            return t0.elapsed();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out after {deadline:?} waiting for: {what}");
}

/// Health of `peer` as `observer` sees it.
fn health_seen(cluster: &LiveCluster, observer: usize, peer: usize) -> PeerHealth {
    cluster.node(observer).loads.read().health(NodeId(peer as u32))
}

macro_rules! engine_tests {
    ($($name:ident),* $(,)?) => {
        mod reactor {
            $(#[test] fn $name() { super::$name(super::Engine::Reactor); })*
        }
        mod threaded {
            $(#[test] fn $name() { super::$name(super::Engine::ThreadPerConn); })*
        }
    };
}

engine_tests!(
    hard_kill_mid_workload_never_hangs,
    partition_marks_suspect_then_dead_then_heals,
    graceful_stop_evicts_within_one_loadd_period,
    slow_disk_blows_deadline_and_sheds_503,
    fd_pressure_and_pause_give_definite_outcomes,
    garbled_loadd_packets_counted_never_fatal,
    blackholed_peer_channel_degrades_pull_to_redirect,
);

/// Kill a node under live traffic, revive it, and require every single
/// request to reach a definite outcome — a response or a refused
/// connection, never a socket timeout (the client-visible face of a
/// hang). After revival the victim must rejoin the scheduling pool.
fn hard_kill_mid_workload_never_hangs(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::Crash { node: 2, at_ms: 400 })
        .with(Fault::Revive { node: 2, at_ms: 1_400 });
    save_plan("hard-kill", engine, &plan);
    let dir = docroot(&format!("kill-{}", engine.name()));
    let cluster = LiveCluster::start(3, dir, chaos_config(engine, plan)).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)), "mesh must converge first");

    let mut outcomes = 0u32;
    let mut refused = 0u32;
    while cluster.chaos().now_ms() < 2_200 {
        cluster.drive_scripted();
        for target in [0usize, 1] {
            let url = format!("{}/doc{}.txt", cluster.base_url(target), outcomes % 8);
            match client::get_with_timeout(&url, Duration::from_secs(5)) {
                Ok(resp) => assert!(
                    resp.status == 200 || resp.status == 503,
                    "unexpected status {} from node {target}",
                    resp.status
                ),
                // A 302 aimed at the victim inside the sub-period race
                // window lands on a closed port: refused, not hung.
                Err(client::ClientError::Io(e)) => {
                    assert!(
                        e.kind() != ErrorKind::TimedOut && e.kind() != ErrorKind::WouldBlock,
                        "request to node {target} hung: {e}"
                    );
                    refused += 1;
                }
                Err(e) => panic!("non-IO client failure: {e}"),
            }
            outcomes += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    while cluster.drive_scripted() {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(outcomes > 20, "workload too thin to mean anything: {outcomes}");
    // The failure detector must actually have fired on the survivors...
    for observer in [0, 1] {
        assert!(
            cluster.node(observer).stats.peer_dead.get() >= 1,
            "node {observer} never declared the victim dead"
        );
    }
    // ...and revival must restore the victim to everyone's candidate pool.
    await_true(Duration::from_secs(5), "peers see revived node as alive", || {
        (0..2).all(|obs| health_seen(&cluster, obs, 2) == PeerHealth::Alive)
            && cluster.is_running(2)
    });
    let direct = client::get(&format!("{}/ok.txt", cluster.base_url(2))).unwrap();
    assert_eq!(direct.status, 200, "revived node must serve again");
    assert!(
        refused < outcomes / 4,
        "too many refused connections ({refused}/{outcomes}): broker still \
         redirects to a peer it should have marked Suspect"
    );
    cluster.shutdown();
}

/// Cut the loadd link between two nodes: each walks the other through
/// Alive → Suspect → Dead on pure silence, emits the membership counters
/// and log lines, and — once the partition heals — revives the peer from
/// its first fresh packet. The status API must report the whole story.
fn partition_marks_suspect_then_dead_then_heals(engine: Engine) {
    // The cut opens at 500 ms: late enough that the mesh has converged
    // (peers never heard from get boot grace and would not be marked),
    // early enough to keep the test short.
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::Partition { a: 0, b: 1, window: Window::between(500, 2_500) });
    save_plan("partition", engine, &plan);
    let dir = docroot(&format!("part-{}", engine.name()));
    let log_path = dir.join("access.log");
    let mut cfg = chaos_config(engine, plan);
    cfg.access_log = Some(AccessLog::to_file(&log_path).unwrap());
    let cluster = LiveCluster::start(2, dir.clone(), cfg).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_millis(450)), "mesh must converge pre-cut");

    // Silence > two loadd periods: Suspect. Silence > stale timeout: Dead.
    await_true(Duration::from_secs(3), "partitioned peers suspect each other", || {
        health_seen(&cluster, 0, 1) == PeerHealth::Suspect
            || health_seen(&cluster, 0, 1) == PeerHealth::Dead
    });
    await_true(Duration::from_secs(4), "partitioned peers declare each other dead", || {
        health_seen(&cluster, 0, 1) == PeerHealth::Dead
            && health_seen(&cluster, 1, 0) == PeerHealth::Dead
    });
    // Both nodes still serve their own clients throughout the partition.
    for i in 0..2 {
        let resp = client::get(&format!("{}/ok.txt", cluster.base_url(i))).unwrap();
        assert_eq!(resp.status, 200);
    }
    // Window closes at 1.5 s; the first delivered packet revives the peer.
    await_true(Duration::from_secs(5), "healed partition revives both peers", || {
        health_seen(&cluster, 0, 1) == PeerHealth::Alive
            && health_seen(&cluster, 1, 0) == PeerHealth::Alive
    });

    // Satellite: the transitions surfaced as counters...
    for i in 0..2 {
        let stats = &cluster.node(i).stats;
        assert!(stats.peer_suspect.get() >= 1, "node {i} counted no Suspect transition");
        assert!(stats.peer_dead.get() >= 1, "node {i} counted no Dead transition");
        assert!(stats.peer_revived.get() >= 1, "node {i} counted no revival");
    }
    // ...as membership lines in the access log...
    let log = std::fs::read_to_string(&log_path).unwrap();
    for event in ["suspect", "dead", "revived"] {
        assert!(
            log.lines().any(|l| l.contains("MEMBER") && l.contains(&format!("/{event}"))),
            "no {event} membership line in access log:\n{log}"
        );
    }
    // ...and in the versioned status API: per-peer health, plus the
    // injected packet drops that caused all of this.
    let resp = client::get(&format!("{}/sweb-status?format=json", cluster.base_url(0))).unwrap();
    let json = sweb_telemetry::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let report = StatusReport::from_json(&json).expect("status must parse under the current schema");
    support::assert_current_schema(&report);
    assert_eq!(report.load.len(), 2);
    assert!(report.load.iter().all(|row| row.health == "alive"), "{:?}", report.load);
    assert!(report.faults.packets_dropped > 0, "partition dropped no packets?");
    assert!(report.counters.peer_dead >= 1);
    cluster.shutdown();
}

/// Graceful shutdown: drain, final `leaving` packet, stop. Peers must
/// evict the leaver *immediately* on the announcement — well inside one
/// loadd period — instead of waiting out the staleness timeout.
fn graceful_stop_evicts_within_one_loadd_period(engine: Engine) {
    let dir = docroot(&format!("drain-{}", engine.name()));
    let cluster = ServerOptions::new()
        .policy(Policy::Sweb)
        .engine(engine)
        .loadd_timing(200, 5_000) // silence alone is far too slow
        .start(3, dir)
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)));

    let drained = cluster.stop_gracefully(2, Duration::from_secs(5));
    assert!(drained, "idle node must drain instantly");
    // The leaving packet is already on the wire when stop_gracefully
    // returns: peers must mark Dead in receive-loop time, an order of
    // magnitude under the 5 s staleness timeout they'd otherwise need.
    let evicted_in = await_true(
        Duration::from_millis(400), // 2 × loadd period of grace for a busy CI box
        "peers evict the announced leaver",
        || (0..2).all(|obs| health_seen(&cluster, obs, 2) == PeerHealth::Dead),
    );
    assert!(!cluster.is_running(2));
    // Survivors keep serving, and never redirect at the corpse.
    for _ in 0..10 {
        for i in 0..2 {
            let resp = client::get(&format!("{}/ok.txt", cluster.base_url(i))).unwrap();
            assert_eq!(resp.status, 200);
            assert_ne!(resp.served_by, Some(2), "request redirected to a drained node");
        }
    }
    // And the slot is reusable: revive rejoins on the same address.
    cluster.revive(2).unwrap();
    await_true(Duration::from_secs(5), "revived leaver rejoins the pool", || {
        (0..2).all(|obs| health_seen(&cluster, obs, 2) == PeerHealth::Alive)
    });
    assert_eq!(client::get(&format!("{}/ok.txt", cluster.base_url(2))).unwrap().status, 200);
    eprintln!("eviction latency after leaving packet: {evicted_in:?}");
    cluster.shutdown();
}

/// A disk serving reads 800 ms late against a 250 ms request budget: the
/// node must answer `503` + `Retry-After` (and close the connection)
/// rather than let the client wait out a read that cannot finish in time.
fn slow_disk_blows_deadline_and_sheds_503(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::SlowDisk { node: 0, extra_ms: 800, window: Window::ALWAYS });
    save_plan("slow-disk", engine, &plan);
    let dir = docroot(&format!("slow-{}", engine.name()));
    let mut cfg = chaos_config(engine, plan);
    cfg.request_budget = Duration::from_millis(250);
    let cluster = LiveCluster::start(1, dir, cfg).unwrap();

    let resp = client::get_with_timeout(
        &format!("{}/ok.txt", cluster.base_url(0)),
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(resp.status, 503, "overrun must shed, not stall");
    assert_eq!(resp.headers.get("retry-after"), Some("1"), "503 must tell the client when");
    let stats = &cluster.node(0).stats;
    assert!(stats.deadline_overruns.get() >= 1, "overrun not counted");
    assert!(cluster.chaos().counts().snapshot().slow_reads >= 1, "injected stall not counted");
    cluster.shutdown();
}

/// Synthetic fd exhaustion, then an accept pause: during either fault a
/// client gets a definite outcome (an error or a delayed success once the
/// backlog drains) and afterwards the node serves normally again.
fn fd_pressure_and_pause_give_definite_outcomes(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::FdPressure { node: 0, window: Window::between(0, 400) })
        .with(Fault::Pause { node: 0, window: Window::between(600, 900) });
    save_plan("fd-pause", engine, &plan);
    let dir = docroot(&format!("fd-{}", engine.name()));
    let cluster = LiveCluster::start(1, dir, chaos_config(engine, plan)).unwrap();
    let url = format!("{}/ok.txt", cluster.base_url(0));

    // Phase 1: fd pressure. Accepted-then-slammed or queued-then-served —
    // either way the call returns; it must never time out.
    while cluster.chaos().now_ms() < 400 {
        match client::get_with_timeout(&url, Duration::from_secs(5)) {
            Ok(resp) => assert!(resp.status == 200 || resp.status == 503, "{}", resp.status),
            Err(client::ClientError::Io(e)) => assert!(
                e.kind() != ErrorKind::TimedOut && e.kind() != ErrorKind::WouldBlock,
                "hung under fd pressure: {e}"
            ),
            Err(client::ClientError::BadResponse(_)) => {} // slammed mid-response: definite
            Err(e) => panic!("unexpected failure under fd pressure: {e}"),
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // Phase 2: paused accepts. Connections sit in the kernel backlog and
    // complete once the window closes — late, but definite.
    while cluster.chaos().now_ms() < 900 {
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200, "backlogged request must complete after the pause");
    }
    // Fully recovered, and both faults left their fingerprints.
    let resp = client::get(&url).unwrap();
    assert_eq!(resp.status, 200);
    let faults = cluster.chaos().counts().snapshot();
    assert!(faults.fd_rejections >= 1, "fd fault never fired");
    assert!(faults.accepts_paused >= 1, "pause fault never fired");
    cluster.shutdown();
}

/// Blackhole the peer transfer channel between the only two nodes: every
/// pull the broker schedules fails the injected loss check, and every
/// failure degrades to the classic 302 — correct bytes, zero hangs, and
/// the degradation visible in both the node counters and the injector's.
fn blackholed_peer_channel_degrades_pull_to_redirect(engine: Engine) {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::PeerLoss { from: 1, to: 0, rate_ppm: 1_000_000, window: Window::ALWAYS });
    save_plan("peer-loss", engine, &plan);
    let dir = docroot(&format!("peer-loss-{}", engine.name()));
    let mut cfg = chaos_config(engine, plan);
    cfg.policy = Policy::FileLocality; // deterministic pull targets: the home
    cfg.sweb.peer_transfer = true;
    let cluster = LiveCluster::start(2, dir.clone(), cfg).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)));

    for i in 0..8 {
        let url = format!("{}/doc{i}.txt", cluster.base_url(0));
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200, "doc{i}");
        assert_eq!(
            resp.body,
            std::fs::read(dir.join(format!("doc{i}.txt"))).unwrap(),
            "degraded path must still serve identical bytes"
        );
    }
    let stats = &cluster.node(0).stats;
    assert_eq!(stats.peer_fetches.get(), 0, "no pull survives a 100% loss rate");
    assert!(stats.forward_failures.get() >= 1, "failed pulls must be counted");
    assert!(stats.redirected.get() >= 1, "failed pulls must degrade to the 302");
    assert!(cluster.chaos().counts().snapshot().peer_drops >= 1, "injector must log the drops");
    // loadd shares the pair but not the fault: the mesh stayed healthy.
    assert_eq!(health_seen(&cluster, 0, 1), PeerHealth::Alive);
    cluster.shutdown();
}

/// Garbage on the loadd port: every undecodable packet increments the
/// decode-error counter, corrupts no load table, and kills nothing.
fn garbled_loadd_packets_counted_never_fatal(engine: Engine) {
    let dir = docroot(&format!("garble-{}", engine.name()));
    let cluster = LiveCluster::start(2, dir, chaos_config(engine, FaultPlan::seeded(0))).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(10)));

    let victim = cluster.node(0).peer_udp[0];
    let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    // Empty, truncated, wrong-magic, and a valid-looking v2 header whose
    // node id points far outside the cluster.
    let mut out_of_range = vec![0u8; 64];
    out_of_range[0] = b'S';
    out_of_range[1] = b'W';
    out_of_range[2] = 2;
    out_of_range[3] = 200; // node id 200 in a 2-node cluster
    let attacks: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0xff; 7],
        b"not a loadd packet at all".to_vec(),
        vec![0xab; 64],
        out_of_range,
    ];
    for pkt in &attacks {
        sock.send_to(pkt, victim).unwrap();
    }
    await_true(Duration::from_secs(5), "decode errors counted", || {
        cluster.node(0).stats.loadd_decode_errors.get() >= 2
    });
    // The garbage changed nobody's view and broke nobody's service.
    assert_eq!(health_seen(&cluster, 0, 1), PeerHealth::Alive);
    let resp = client::get(&format!("{}/ok.txt", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    cluster.shutdown();
}

/// The harness itself is deterministic: a plan survives the text round
/// trip byte-for-byte, and two injectors built from the same plan hand
/// out identical verdict streams (so a CI artifact truly replays).
#[test]
fn fault_plans_replay_deterministically() {
    let plan = FaultPlan::seeded(plan_seed())
        .with(Fault::LoaddLoss { from: 0, to: 1, rate_ppm: 500_000, window: Window::ALWAYS })
        .with(Fault::Partition { a: 1, b: 2, window: Window::between(100, 900) })
        .with(Fault::Crash { node: 2, at_ms: 500 })
        .with(Fault::Revive { node: 2, at_ms: 1_500 });
    save_plan("replay", Engine::Reactor, &plan);
    let text = plan.to_text();
    let back = FaultPlan::from_text(&text).unwrap();
    assert_eq!(back, plan);
    assert_eq!(back.to_text(), text, "re-serialization must be byte-stable");

    let a = sweb_server::Injector::from_plan(&plan);
    let b = sweb_server::Injector::from_plan(&back);
    let verdicts = |inj: &sweb_server::Injector| {
        (0..500).map(|i| inj.loadd_tx_at(0, 1, i * 3)).collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&a), verdicts(&b), "same plan, same verdict stream");
    assert_eq!(a.scripted_ops(), b.scripted_ops());
}
