//! End-to-end tests of the live TCP cluster.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sweb_core::Policy;
use sweb_server::{client, AccessLog, Engine, LiveCluster, ServerOptions};

mod support;

/// Build a docroot with a few documents of varying sizes.
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("maps")).unwrap();
    std::fs::write(dir.join("index.html"), "<html><body>Alexandria</body></html>").unwrap();
    std::fs::write(dir.join("maps/goleta.gif"), vec![0x47u8; 200_000]).unwrap();
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("document {i}").repeat(100))
            .unwrap();
    }
    dir
}

fn start(
    tag: &str,
    n: usize,
    policy: Policy,
    engine: Engine,
) -> (LiveCluster, std::path::PathBuf) {
    let dir = docroot(&format!("{tag}-{}", engine.name()));
    let cluster =
        ServerOptions::new().policy(policy).engine(engine).start(n, dir.clone()).unwrap();
    (cluster, dir)
}

/// Instantiate every listed scenario once per connection engine: the two
/// engines must be observably interchangeable to clients and to the
/// scheduler, so the whole suite runs against both.
macro_rules! engine_tests {
    ($($name:ident),* $(,)?) => {
        mod reactor {
            $(#[test] fn $name() { super::$name(super::Engine::Reactor); })*
        }
        mod threaded {
            $(#[test] fn $name() { super::$name(super::Engine::ThreadPerConn); })*
        }
    };
}

engine_tests!(
    serves_documents_with_correct_body_and_mime,
    missing_documents_get_404_and_traversal_gets_403,
    unsupported_methods_get_501_and_garbage_gets_400,
    head_returns_headers_without_body,
    loadd_mesh_converges,
    file_locality_redirects_to_home_and_client_follows,
    redirect_once_rule_is_enforced_end_to_end,
    round_robin_policy_never_redirects,
    concurrent_clients_all_succeed,
    file_cache_serves_repeats_from_memory,
    pipelined_requests_on_one_connection_all_answered,
    pipelined_keepalive_requests_answered_in_order,
    admission_cap_sheds_excess_connections_with_503,
    graceful_drain_removes_node_from_scheduling_but_keeps_it_serving,
    post_runs_cgi_and_pins_local,
    conditional_get_returns_304_for_fresh_copies,
    keepalive_session_reuses_one_connection,
    non_keepalive_clients_still_close_per_request,
    status_endpoint_reports_cluster_view,
    cgi_programs_run_and_echo,
    cgi_requests_participate_in_scheduling,
    sweb_policy_serves_under_load_spread,
    peer_transfer_serves_remote_files_with_zero_redirects,
    hot_files_replicate_to_peers_ahead_of_demand,
);

fn serves_documents_with_correct_body_and_mime(engine: Engine) {
    let (cluster, dir) = start("basic", 2, Policy::RoundRobin, engine);
    let resp = client::get(&format!("{}/index.html", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("content-type"), Some("text/html"));
    assert_eq!(resp.body, std::fs::read(dir.join("index.html")).unwrap());
    let gif = client::get(&format!("{}/maps/goleta.gif", cluster.base_url(1))).unwrap();
    assert_eq!(gif.status, 200);
    assert_eq!(gif.headers.get("content-type"), Some("image/gif"));
    assert_eq!(gif.body.len(), 200_000);
    cluster.shutdown();
}

fn missing_documents_get_404_and_traversal_gets_403(engine: Engine) {
    let (cluster, _dir) = start("errors", 1, Policy::RoundRobin, engine);
    let resp = client::get(&format!("{}/nope.html", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::get(&format!("{}/../etc/passwd", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 403);
    cluster.shutdown();
}

fn unsupported_methods_get_501_and_garbage_gets_400(engine: Engine) {
    let (cluster, _dir) = start("methods", 1, Policy::RoundRobin, engine);
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"PUT /index.html HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.0 501"), "{out}");

    // POST without Content-Length is malformed.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"POST /cgi-bin/echo HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.0 400"), "{out}");

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"totally not http\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.0 400"), "{out}");
    cluster.shutdown();
}

fn head_returns_headers_without_body(engine: Engine) {
    let (cluster, _dir) = start("head", 1, Policy::RoundRobin, engine);
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"HEAD /index.html HTTP/1.0\r\n\r\n").unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.starts_with("HTTP/1.0 200"), "{text}");
    assert!(text.contains("Content-Length:"));
    assert!(text.ends_with("\r\n\r\n"), "HEAD must carry no body");
    cluster.shutdown();
}

fn loadd_mesh_converges(engine: Engine) {
    let (cluster, _dir) = start("loadd", 3, Policy::Sweb, engine);
    assert!(
        cluster.await_loadd_mesh(Duration::from_secs(5)),
        "every node should hear from every node within 5s"
    );
    cluster.shutdown();
}

fn file_locality_redirects_to_home_and_client_follows(engine: Engine) {
    let (cluster, _dir) = start("locality", 3, Policy::FileLocality, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    // Find a path whose home is NOT node 0, then fetch it from node 0.
    let mut found = false;
    for i in 0..8 {
        let path = format!("/doc{i}.txt");
        let resp = client::get(&format!("{}{}", cluster.base_url(0), path)).unwrap();
        assert_eq!(resp.status, 200);
        if resp.redirects == 1 {
            found = true;
            let served = resp.served_by.expect("X-SWEB-Node header");
            assert_ne!(served, 0, "redirect must land on the home node, not the origin");
        }
    }
    assert!(found, "at least one of 8 hashed docs must be homed off node 0");
    // The origin recorded redirects; some target recorded marked arrivals.
    assert!(cluster.node(0).stats.redirected.get() > 0);
    let marked: u64 = (0..3)
        .map(|i| cluster.node(i).stats.received_redirects.get())
        .sum();
    assert!(marked > 0, "targets must observe the redirect-once marker");
    cluster.shutdown();
}

fn redirect_once_rule_is_enforced_end_to_end(engine: Engine) {
    let (cluster, _dir) = start("once", 3, Policy::FileLocality, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    // Send a marked request for every doc to the "wrong" node: it must be
    // served locally (no second 302) regardless of where its home is.
    for i in 0..8 {
        let url = format!("{}/doc{i}.txt?sweb-redirect=1", cluster.base_url(0));
        let resp = client::get(&url).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.redirects, 0, "marked request must never bounce again");
        assert_eq!(resp.served_by, Some(0), "marked request must be served where it landed");
    }
    cluster.shutdown();
}

fn round_robin_policy_never_redirects(engine: Engine) {
    let (cluster, _dir) = start("rr", 3, Policy::RoundRobin, engine);
    for i in 0..8 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(i % 3))).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.redirects, 0);
    }
    for i in 0..3 {
        assert_eq!(cluster.node(i).stats.redirected.get(), 0);
    }
    cluster.shutdown();
}

fn concurrent_clients_all_succeed(engine: Engine) {
    let (cluster, _dir) = start("concurrent", 3, Policy::Sweb, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    let urls: Vec<String> =
        (0..3).map(|i| cluster.base_url(i).to_string()).collect();
    let mut handles = Vec::new();
    for t in 0..8 {
        let urls = urls.clone();
        handles.push(std::thread::spawn(move || {
            let mut ok = 0;
            for r in 0..10 {
                let url = format!("{}/doc{}.txt", urls[(t + r) % 3], (t * 3 + r) % 8);
                match client::get(&url) {
                    Ok(resp) if resp.status == 200 => ok += 1,
                    other => panic!("fetch failed: {other:?}"),
                }
            }
            ok
        }));
    }
    let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 80);
    let served: u64 =
        (0..3).map(|i| cluster.node(i).stats.served.get()).sum();
    assert!(served >= 80, "all requests must be served somewhere, got {served}");
    cluster.shutdown();
}

fn file_cache_serves_repeats_from_memory(engine: Engine) {
    let (cluster, dir) = start("filecache", 1, Policy::RoundRobin, engine);
    let url = format!("{}/maps/goleta.gif", cluster.base_url(0));
    for _ in 0..4 {
        let resp = client::get(&url).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 200_000);
    }
    let node = cluster.node(0);
    assert_eq!(node.file_cache.misses(), 1, "only the first read touches disk");
    assert_eq!(node.file_cache.hits(), 3);
    // Modify the document: next fetch must serve the new bytes.
    std::thread::sleep(Duration::from_millis(20));
    std::fs::write(dir.join("maps/goleta.gif"), vec![0x50u8; 1000]).unwrap();
    let resp = client::get(&url).unwrap();
    assert_eq!(resp.body.len(), 1000, "stale cache entry must be invalidated");
    // The status page reports the cache counters.
    let status = client::get(&format!("{}/sweb-status", cluster.base_url(0))).unwrap();
    assert!(String::from_utf8(status.body).unwrap().contains("file cache:"));
    cluster.shutdown();
}

fn pipelined_requests_on_one_connection_all_answered(engine: Engine) {
    let (cluster, _dir) = start("pipeline", 1, Policy::RoundRobin, engine);
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    // Two requests written back-to-back before reading anything.
    stream
        .write_all(
            b"GET /doc0.txt HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n\
              GET /doc1.txt HTTP/1.0\r\n\r\n",
        )
        .unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(
        text.matches("HTTP/1.0 200 OK").count(),
        2,
        "both pipelined requests must be answered: {text}"
    );
    // Second request had no Keep-Alive, so the connection closed after it.
    assert_eq!(cluster.node(0).stats.served.get(), 2);
    cluster.shutdown();
}

fn pipelined_keepalive_requests_answered_in_order(engine: Engine) {
    // Both requests keep the connection alive, so the server must answer
    // them *in order* on the same socket — the client tells them apart
    // only by position.
    let (cluster, _dir) = start("pipeorder", 1, Policy::RoundRobin, engine);
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(
            b"GET /doc0.txt HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n\
              GET /doc1.txt HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
        )
        .unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Peel complete responses off the front of the byte stream.
    let mut buf = Vec::new();
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    let mut chunk = [0u8; 4096];
    while bodies.len() < 2 {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed before both responses arrived");
        buf.extend_from_slice(&chunk[..n]);
        while let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            assert!(head.starts_with("HTTP/1.0 200"), "{head}");
            let len: usize = head
                .lines()
                .find_map(|l| {
                    let low = l.to_ascii_lowercase();
                    low.strip_prefix("content-length:")
                        .map(|v| v.trim().parse().unwrap())
                })
                .expect("Content-Length header");
            let total = head_end + 4 + len;
            if buf.len() < total {
                break;
            }
            bodies.push(buf[head_end + 4..total].to_vec());
            buf.drain(..total);
        }
    }
    assert!(
        bodies[0].starts_with(b"document 0"),
        "first response must be doc0, got {:?}",
        String::from_utf8_lossy(&bodies[0][..20.min(bodies[0].len())])
    );
    assert!(
        bodies[1].starts_with(b"document 1"),
        "second response must be doc1, got {:?}",
        String::from_utf8_lossy(&bodies[1][..20.min(bodies[1].len())])
    );
    drop(stream);
    assert_eq!(cluster.node(0).stats.accepted.get(), 1, "both requests share one connection");
    assert_eq!(cluster.node(0).stats.served.get(), 2);
    cluster.shutdown();
}

fn admission_cap_sheds_excess_connections_with_503(engine: Engine) {
    // Over-cap connections are refused with a counted 503 on BOTH
    // engines — the scheduler reads `shed` as a node-pressure signal, so
    // the engines must agree on what it means.
    let dir = docroot(&format!("shedcap-{}", engine.name()));
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(engine)
        .max_conns(4)
        .shards(1) // the cap is divided across shards; pin for determinism
        .start(1, dir)
        .unwrap();
    let addr = cluster.base_url(0).strip_prefix("http://").unwrap().to_string();

    // Fill the admission cap with idle connections.
    let idle: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(&addr).unwrap()).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.node(0).stats.active.get() < 4 {
        assert!(std::time::Instant::now() < deadline, "cap never filled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The next connection is turned away, counted as shed — not served.
    let mut extra = TcpStream::connect(&addr).unwrap();
    extra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = extra.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.0 503"), "expected shed, got {out:?}");
    let stats = &cluster.node(0).stats;
    assert!(stats.shed.get() >= 1, "shed must be counted");
    assert_eq!(stats.served.get(), 0, "a shed connection is not a served request");
    drop(idle);
    cluster.shutdown();
}

fn graceful_drain_removes_node_from_scheduling_but_keeps_it_serving(engine: Engine) {
    let (cluster, _dir) = start("drain", 3, Policy::FileLocality, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    // Find a doc homed on node 1 (fetching from node 0 must redirect there).
    let homed_on_1: Vec<String> = (0..8)
        .map(|i| format!("/doc{i}.txt"))
        .filter(|path| {
            client::get(&format!("{}{}", cluster.base_url(0), path))
                .map(|r| r.served_by == Some(1))
                .unwrap_or(false)
        })
        .collect();
    assert!(!homed_on_1.is_empty(), "need at least one doc homed on node 1");

    // Drain node 1 and wait for the announcement to propagate.
    cluster.drain(1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.node(0).loads.read().is_alive(sweb_cluster::NodeId(1)) {
        assert!(std::time::Instant::now() < deadline, "drain announcement never arrived");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Peers no longer redirect to it...
    for path in &homed_on_1 {
        let resp = client::get(&format!("{}{}", cluster.base_url(0), path)).unwrap();
        assert_eq!(resp.status, 200);
        assert_ne!(resp.served_by, Some(1), "{path} must not be scheduled onto a draining node");
    }
    // ...but direct requests to it are still served.
    let resp = client::get(&format!("{}/index.html?sweb-redirect=1", cluster.base_url(1))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.served_by, Some(1));

    // Undrain: peers revive it and locality redirects resume.
    cluster.undrain(1);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let back = client::get(&format!("{}{}", cluster.base_url(0), &homed_on_1[0]))
            .unwrap()
            .served_by
            == Some(1);
        if back {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "node never rejoined the pool");
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown();
}

fn post_runs_cgi_and_pins_local(engine: Engine) {
    // FileLocality would redirect a GET whose hashed home is elsewhere;
    // POST must always be served where it lands.
    let (cluster, _dir) = start("post", 3, Policy::FileLocality, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    for i in 0..4 {
        let url = format!("{}/cgi-bin/echo?try={i}", cluster.base_url(0));
        let resp = client::post(&url, b"q=goleta&cost=100", "application/x-www-form-urlencoded")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.served_by, Some(0), "POST must never be reassigned");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("posted: q=goleta&cost=100"), "{text}");
    }
    // POST to a static document is 405.
    let resp = client::post(
        &format!("{}/doc0.txt", cluster.base_url(0)),
        b"x",
        "text/plain",
    )
    .unwrap();
    assert_eq!(resp.status, 405);
    cluster.shutdown();
}

fn conditional_get_returns_304_for_fresh_copies(engine: Engine) {
    let (cluster, _dir) = start("conditional", 1, Policy::RoundRobin, engine);
    let url = format!("{}/index.html", cluster.base_url(0));
    let first = client::get(&url).unwrap();
    assert_eq!(first.status, 200);
    let last_modified = first.headers.get("last-modified").expect("Last-Modified on 200").to_string();

    // Fresh copy: 304, no body.
    let resp = client::get_with_headers(
        &url,
        &[("If-Modified-Since", &last_modified)],
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 304);
    assert!(resp.body.is_empty());

    // Stale copy (long before the file's mtime): full 200.
    let resp = client::get_with_headers(
        &url,
        &[("If-Modified-Since", "Sun, 06 Nov 1994 08:49:37 GMT")],
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.body.is_empty());

    // Unparseable date: safe fallback to 200.
    let resp = client::get_with_headers(
        &url,
        &[("If-Modified-Since", "Sunday, 06-Nov-94 08:49:37 GMT")],
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    cluster.shutdown();
}

fn keepalive_session_reuses_one_connection(engine: Engine) {
    let (cluster, _dir) = start("keepalive", 1, Policy::RoundRobin, engine);
    let mut session = client::Session::connect(cluster.base_url(0)).unwrap();
    for i in 0..6 {
        let resp = session.get(&format!("/doc{}.txt", i % 8)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("connection").map(|s| s.to_ascii_lowercase()).as_deref(), Some("keep-alive"));
    }
    assert!(session.reused >= 5, "connection must be reused, got {}", session.reused);
    // Exactly one connection was accepted for all six requests.
    assert_eq!(
        cluster.node(0).stats.accepted.get(),
        1,
        "keep-alive must not open new connections"
    );
    cluster.shutdown();
}

fn non_keepalive_clients_still_close_per_request(engine: Engine) {
    let (cluster, _dir) = start("closing", 1, Policy::RoundRobin, engine);
    for i in 0..3 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
        assert_ne!(
            resp.headers.get("connection").map(|s| s.to_ascii_lowercase()).as_deref(),
            Some("keep-alive")
        );
    }
    assert_eq!(cluster.node(0).stats.accepted.get(), 3);
    cluster.shutdown();
}

fn status_endpoint_reports_cluster_view(engine: Engine) {
    let (cluster, _dir) = start("status", 3, Policy::Sweb, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    let resp = client::get(&format!("{}/sweb-status", cluster.base_url(1))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.redirects, 0, "status must be served where it landed");
    let text = String::from_utf8(resp.body).unwrap();
    assert!(text.contains("SWEB node n1"), "{text}");
    assert!(text.contains("n0") && text.contains("n2"), "table must list all peers: {text}");
    assert!(text.contains("counters:"), "{text}");
}

fn cgi_programs_run_and_echo(engine: Engine) {
    let (cluster, _dir) = start("cgi", 2, Policy::RoundRobin, engine);
    let resp =
        client::get(&format!("{}/cgi-bin/echo?zoom=3&layer=roads", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(std::str::from_utf8(&resp.body).unwrap(), "echo: zoom=3&layer=roads\n");
    let resp = client::get(&format!("{}/cgi-bin/search?cost=5000", cluster.base_url(1))).unwrap();
    assert_eq!(resp.status, 200);
    assert!(std::str::from_utf8(&resp.body).unwrap().contains("Alexandria search"));
    // Unknown CGI programs 404.
    let resp = client::get(&format!("{}/cgi-bin/missing", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 404);
    cluster.shutdown();
}

fn cgi_requests_participate_in_scheduling(engine: Engine) {
    let (cluster, _dir) = start("cgisched", 3, Policy::FileLocality, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    // Under FileLocality, CGI paths have hashed homes too; at least one of
    // several program paths should redirect away from node 0.
    let mut redirected = 0;
    for q in 0..6 {
        let resp =
            client::get(&format!("{}/cgi-bin/echo?q={q}", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
        redirected += resp.redirects;
    }
    // All six share one path => identical home; either all or none
    // redirect. Check consistency rather than a specific count.
    assert!(redirected == 0 || redirected == 6, "got {redirected}");
    cluster.shutdown();
}

/// Reactor-only: with `--shards 4` every shard must come up live and the
/// v3 status report's per-shard breakdown must account for every request
/// exactly (the rows are read from the same shard-local cells the summed
/// counters are).
#[test]
fn sharded_reactor_reports_every_shard_live_and_exact() {
    let dir = docroot("shards4");
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .shards(4)
        .start(1, dir.clone())
        .unwrap();
    let expected = std::fs::read(dir.join("doc3.txt")).unwrap();
    for i in 0..12 {
        let resp = client::get(&format!("{}/doc{}.txt", cluster.base_url(0), i % 8)).unwrap();
        assert_eq!(resp.status, 200, "request {i}");
        if i % 8 == 3 {
            assert_eq!(resp.body, expected, "sharded reactor must serve identical bytes");
        }
    }
    let resp = client::get(&format!("{}/sweb-status?format=json", cluster.base_url(0))).unwrap();
    let json = sweb_telemetry::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let report = sweb_server::StatusReport::from_json(&json).unwrap();
    support::assert_current_schema(&report);
    assert_eq!(report.shards.len(), 4, "{:?}", report.shards);
    assert!(report.shards.iter().all(|s| s.live), "{:?}", report.shards);
    let served: u64 = report.shards.iter().map(|s| s.served).sum();
    assert!(served >= 12, "per-shard served must cover all requests: {:?}", report.shards);
    assert_eq!(
        served, report.counters.served,
        "shard breakdown must sum to the node counter exactly"
    );
    cluster.shutdown();
}

/// The peer-transfer acceptance path: a 2-node cluster where node 0
/// serves documents homed on node 1 by pulling them over the peer
/// channel. The client path must be 302-free, the body byte-identical to
/// disk, the pull cache-seeding (repeats stay local), and one logical
/// request joinable across both nodes' access logs by its trace id.
fn peer_transfer_serves_remote_files_with_zero_redirects(engine: Engine) {
    let dir = docroot(&format!("peer-pull-{}", engine.name()));
    let log_path = dir.join("access.log");
    let cluster = ServerOptions::new()
        .policy(Policy::FileLocality)
        .engine(engine)
        .peer_transfer(true)
        .access_log(AccessLog::to_file(&log_path).unwrap())
        .start(2, dir.clone())
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));

    let mut traces = Vec::new();
    for i in 0..8 {
        let path = format!("/doc{i}.txt");
        let resp = client::get(&format!("{}{path}", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200, "{path}");
        assert_eq!(resp.redirects, 0, "peer transfer must keep the client path 302-free");
        assert_eq!(resp.served_by, Some(0), "the node the client reached must answer");
        assert_eq!(
            resp.body,
            std::fs::read(dir.join(format!("doc{i}.txt"))).unwrap(),
            "{path} must be byte-identical through the peer channel"
        );
        if let Some(t) = resp.headers.get("x-sweb-trace") {
            traces.push(t.to_string());
        }
    }
    let stats = &cluster.node(0).stats;
    let pulled = stats.peer_fetches.get();
    assert!(pulled > 0, "at least one of 8 hashed docs must be homed on node 1");
    assert_eq!(stats.redirected.get(), 0, "no client was bounced");
    assert_eq!(stats.forward_failures.get(), 0, "healthy channel, no degradations");

    // The pull seeded node 0's cache: every document is now resident, so
    // repeats are plain local hits — no second round of pulls.
    for i in 0..8 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(0))).unwrap();
        assert_eq!((resp.status, resp.redirects), (200, 0));
    }
    assert_eq!(
        cluster.node(0).stats.peer_fetches.get(),
        pulled,
        "pulled bodies must seed the cache — repeats stay local"
    );

    // One logical request, two nodes' log lines: the origin's GET and the
    // source's PEER serving both carry the same trace id.
    let log = std::fs::read_to_string(&log_path).unwrap();
    assert!(
        log.lines().any(|l| l.contains("\"PEER ")),
        "the source node must log its peer servings:\n{log}"
    );
    let joined = traces.iter().any(|t| {
        log.lines().any(|l| l.contains("\"PEER ") && l.contains(t.as_str()))
            && log.lines().any(|l| l.contains("\"GET ") && l.contains(t.as_str()))
    });
    assert!(joined, "some trace id must join a GET line and a PEER line:\n{log}");
    cluster.shutdown();
}

/// Digest-driven replication: hammer one document on node 0 until the
/// popularity counter marks it hot, then watch the replicator PUSH it to
/// node 1 (whose digest lacks it) ahead of any request arriving there.
fn hot_files_replicate_to_peers_ahead_of_demand(engine: Engine) {
    let dir = docroot(&format!("replicate-{}", engine.name()));
    let cluster = ServerOptions::new()
        .policy(Policy::Sweb)
        .engine(engine)
        .peer_transfer(true)
        .replicate_hot(true)
        // Short loadd period: the replicator sweeps every two periods.
        .loadd_timing(100, 2_000)
        .start(2, dir.clone())
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));

    // The redirect-once marker pins every request local, so the heat all
    // lands on node 0 no matter what the broker would prefer.
    for _ in 0..12 {
        let resp =
            client::get(&format!("{}/doc0.txt?sweb-redirect=1", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
    }
    let t0 = std::time::Instant::now();
    while cluster.node(1).stats.pushes_received.get() == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "replicator never pushed the hot file (sent={}, received={})",
            cluster.node(0).stats.pushes_sent.get(),
            cluster.node(1).stats.pushes_received.get()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(cluster.node(0).stats.pushes_sent.get() >= 1);

    // The replica is resident in node 1's RAM before any client asked: a
    // marked GET there is a cache hit serving identical bytes.
    assert!(cluster.node(1).file_cache.resident("/doc0.txt"), "replica must be resident");
    let hits_before = cluster.node(1).file_cache.hits();
    let resp =
        client::get(&format!("{}/doc0.txt?sweb-redirect=1", cluster.base_url(1))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, std::fs::read(dir.join("doc0.txt")).unwrap());
    assert!(cluster.node(1).file_cache.hits() > hits_before, "replica must serve from RAM");

    // And the replication counters are visible through the status API.
    let resp =
        client::get(&format!("{}/sweb-status?format=json", cluster.base_url(1))).unwrap();
    let json = sweb_telemetry::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let report = sweb_server::StatusReport::from_json(&json).unwrap();
    assert!(report.counters.pushes_received >= 1, "{:?}", report.counters);
    cluster.shutdown();
}

fn sweb_policy_serves_under_load_spread(engine: Engine) {
    // Drive enough traffic at one node that redirect decisions fire, then
    // verify every response still arrives intact.
    let (cluster, _dir) = start("spread", 3, Policy::Sweb, engine);
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    for round in 0..30 {
        let resp =
            client::get(&format!("{}/maps/goleta.gif", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200, "round {round}");
        assert_eq!(resp.body.len(), 200_000);
    }
    cluster.shutdown();
}
