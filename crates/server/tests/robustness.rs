//! Adversarial-input robustness for the live server: malformed bytes,
//! oversized requests, partial writes, and connection churn must never
//! wedge a node.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sweb_core::Policy;
use sweb_server::{client, LiveCluster, ServerOptions};

fn start(tag: &str) -> (LiveCluster, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("sweb-robust-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ok.txt"), b"still alive").unwrap();
    let cluster =
        ServerOptions::new().policy(Policy::RoundRobin).start(1, dir.clone()).unwrap();
    (cluster, dir)
}

fn addr(cluster: &LiveCluster) -> String {
    cluster.base_url(0).strip_prefix("http://").unwrap().to_string()
}

/// After any abuse, the server must still answer a normal request.
fn assert_still_serving(cluster: &LiveCluster) {
    let resp = client::get(&format!("{}/ok.txt", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"still alive");
}

#[test]
fn random_binary_garbage_gets_400_not_a_hang() {
    let (cluster, _dir) = start("garbage");
    for seed in 0..8u8 {
        let mut stream = TcpStream::connect(addr(&cluster)).unwrap();
        let junk: Vec<u8> = (0..512).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
        let _ = stream.write_all(&junk);
        let _ = stream.write_all(b"\r\n\r\n");
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        // Whatever came back (400 or nothing after close), the server lives.
    }
    assert_still_serving(&cluster);
    cluster.shutdown();
}

#[test]
fn oversized_request_head_is_rejected() {
    let (cluster, _dir) = start("oversize");
    let mut stream = TcpStream::connect(addr(&cluster)).unwrap();
    stream.write_all(b"GET /ok.txt HTTP/1.0\r\n").unwrap();
    // 1 MB of headers, far beyond MAX_HEAD_BYTES.
    for i in 0..20_000 {
        if stream.write_all(format!("X-Flood-{i}: {}\r\n", "z".repeat(32)).as_bytes()).is_err() {
            break; // server already slammed the door — fine
        }
    }
    let _ = stream.write_all(b"\r\n");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    if !out.is_empty() {
        assert!(out.starts_with("HTTP/1.0 400"), "{out}");
    }
    assert_still_serving(&cluster);
    cluster.shutdown();
}

#[test]
fn half_open_connections_time_out_without_blocking_others() {
    let (cluster, _dir) = start("halfopen");
    // Open sockets that send a partial request line and go silent.
    let mut zombies = Vec::new();
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr(&cluster)).unwrap();
        stream.write_all(b"GET /ok").unwrap();
        zombies.push(stream); // keep alive, never finish
    }
    // Normal clients are unaffected (thread-per-connection isolation).
    for _ in 0..5 {
        assert_still_serving(&cluster);
    }
    drop(zombies);
    cluster.shutdown();
}

#[test]
fn immediate_disconnects_do_not_leak_slots() {
    let (cluster, _dir) = start("churn");
    for _ in 0..50 {
        // Connect and slam shut without sending anything.
        let stream = TcpStream::connect(addr(&cluster)).unwrap();
        drop(stream);
    }
    // Give the connection threads a moment to notice.
    std::thread::sleep(Duration::from_millis(200));
    assert_still_serving(&cluster);
    let active = cluster.node(0).stats.active.get();
    assert!(active <= 1, "connection slots leaked: {active}");
    cluster.shutdown();
}

#[test]
fn very_long_urls_are_handled() {
    let (cluster, _dir) = start("longurl");
    // Within head limits: a clean 404.
    let long_path = format!("/{}", "a".repeat(4000));
    let resp = client::get(&format!("{}{}", cluster.base_url(0), long_path)).unwrap();
    assert_eq!(resp.status, 404);
    // Beyond head limits: 400 or closed, but never a hang.
    let mut stream = TcpStream::connect(addr(&cluster)).unwrap();
    let _ = stream.write_all(format!("GET /{} HTTP/1.0\r\n\r\n", "b".repeat(40_000)).as_bytes());
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert_still_serving(&cluster);
    cluster.shutdown();
}

#[test]
fn null_bytes_and_traversal_tricks_rejected() {
    let (cluster, _dir) = start("tricks");
    for path in ["/%00", "/ok.txt%00.html", "/%2e%2e/%2e%2e/etc/passwd", "/..%2fetc%2fpasswd"] {
        let resp = client::get(&format!("{}{}", cluster.base_url(0), path)).unwrap();
        assert!(
            resp.status == 403 || resp.status == 404 || resp.status == 400,
            "{path} must be rejected, got {}",
            resp.status
        );
    }
    assert_still_serving(&cluster);
    cluster.shutdown();
}
