//! End-to-end tests for the io_uring reactor backend.
//!
//! Everything here runs the *full* server stack — live cluster, HTTP/1.0
//! handler, sharded reactor — with `ClusterConfig::io_backend` pinned to
//! [`IoBackend::Uring`], and checks the three promises the backend makes:
//!
//! 1. **Byte identity**: every response body served under io_uring is
//!    byte-for-byte what epoll serves for the same document.
//! 2. **Observability**: `/sweb-status` reports `"uring"` for every live
//!    shard (schema v6), and the `sweb_io_*` telemetry counters move.
//! 3. **Fewer syscalls**: for the same request batch, the uring shard
//!    issues measurably fewer poller syscalls than the epoll shard — the
//!    whole point of batched submission.
//!
//! On kernels without io_uring the suite skips (with a note) rather than
//! failing: the production path for those kernels is the epoll fallback,
//! which `sys.rs` unit tests and the conformance suite already cover.

use std::time::{Duration, Instant};

use sweb_core::Policy;
use sweb_reactor::sys::Poller;
use sweb_reactor::IoBackend;
use sweb_server::{
    client, ClusterConfig, Engine, Fault, FaultPlan, LiveCluster, ServerOptions, Window,
};

mod support;

/// True when this kernel can actually open an io_uring ring (no silent
/// fallback — `strict` refuses to downgrade).
fn uring_available() -> bool {
    match Poller::strict(IoBackend::Uring) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("uring tests: skipping, io_uring unavailable: {e}");
            false
        }
    }
}

/// Build a docroot exercising all three write paths: inline writev
/// (small text), the queued uring fast path (cache-hit medium file), and
/// sendfile (large binary, which stays on the readiness path).
fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-uring-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("maps")).unwrap();
    std::fs::write(dir.join("index.html"), b"<html>uring backend test</html>").unwrap();
    let mut big = Vec::with_capacity(200 * 1024);
    for i in 0..(200 * 1024 / 4) {
        big.extend_from_slice(&(i as u32).to_le_bytes());
    }
    std::fs::write(dir.join("maps/goleta.gif"), &big).unwrap();
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("uring doc {i} ").repeat(100))
            .unwrap();
    }
    dir
}

fn config(io_backend: IoBackend) -> ClusterConfig {
    ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .io_backend(io_backend)
        .shards(1)
        .build()
}

const PATHS: &[&str] =
    &["/index.html", "/maps/goleta.gif", "/doc0.txt", "/doc3.txt", "/doc7.txt", "/missing.txt"];

/// The same documents fetched through a uring cluster and an epoll
/// cluster must match byte for byte — status and body — across the
/// small-writev, queued-write, and sendfile paths, plus a 404.
#[test]
fn uring_serves_byte_identical_responses() {
    if !uring_available() {
        return;
    }
    let uring =
        LiveCluster::start(1, docroot("ident-u"), config(IoBackend::Uring)).unwrap();
    let epoll =
        LiveCluster::start(1, docroot("ident-e"), config(IoBackend::Epoll)).unwrap();
    for path in PATHS {
        let a = client::get(&format!("{}{path}", uring.base_url(0))).unwrap();
        let b = client::get(&format!("{}{path}", epoll.base_url(0))).unwrap();
        assert_eq!(a.status, b.status, "{path}: status diverged");
        assert_eq!(a.body, b.body, "{path}: body diverged between uring and epoll");
    }
    uring.shutdown();
    epoll.shutdown();
}

/// `/sweb-status` must expose the backend actually chosen: schema v6,
/// every shard row reporting `"uring"`.
#[test]
fn status_reports_uring_backend_per_shard() {
    if !uring_available() {
        return;
    }
    let mut cfg = config(IoBackend::Uring);
    cfg.shards = 2;
    let cluster = LiveCluster::start(1, docroot("status"), cfg).unwrap();
    // Make sure every shard has actually started before reading.
    let deadline = Instant::now() + Duration::from_secs(5);
    let report = loop {
        let resp =
            client::get(&format!("{}/sweb-status?format=json", cluster.base_url(0))).unwrap();
        let json = sweb_telemetry::Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let report = sweb_server::StatusReport::from_json(&json).unwrap();
        if report.shards.iter().all(|s| s.io_backend != "none") {
            break report;
        }
        assert!(Instant::now() < deadline, "shards never reported a backend: {report:?}");
        std::thread::sleep(Duration::from_millis(25));
    };
    support::assert_current_schema(&report);
    assert_eq!(report.shards.len(), 2);
    for row in &report.shards {
        assert_eq!(row.io_backend, "uring", "shard {} not on uring", row.shard);
    }
    cluster.shutdown();
}

/// Run an identical request batch against a single-shard uring node and
/// a single-shard epoll node, and compare the poller-syscall counters.
/// epoll pays `epoll_wait` plus several `epoll_ctl` per connection
/// (register, interest changes, deregister); uring batches all of that
/// into roughly one `io_uring_enter` per loop tick, so its total must
/// come in strictly lower — and its saved/sqe/cqe counters must move.
#[test]
fn uring_uses_fewer_syscalls_for_the_same_batch() {
    if !uring_available() {
        return;
    }
    let run = |backend: IoBackend, tag: &str| {
        let cluster = LiveCluster::start(1, docroot(tag), config(backend)).unwrap();
        for _ in 0..60 {
            for path in ["/doc0.txt", "/doc1.txt", "/index.html"] {
                let resp = client::get(&format!("{}{path}", cluster.base_url(0))).unwrap();
                assert_eq!(resp.status, 200);
            }
        }
        // Let the shard finish its tick so the final stats drain lands.
        std::thread::sleep(Duration::from_millis(50));
        let stats = &cluster.node(0).stats;
        let out = (
            stats.io_syscalls.get(),
            stats.io_sqe_submitted.get(),
            stats.io_cqe_completed.get(),
            stats.io_syscalls_saved.get(),
        );
        cluster.shutdown();
        out
    };
    let (u_sys, u_sqe, u_cqe, u_saved) = run(IoBackend::Uring, "sys-u");
    let (e_sys, e_sqe, _e_cqe, e_saved) = run(IoBackend::Epoll, "sys-e");
    // 180 connections x (register + interest changes + deregister) on
    // epoll vs batched enters on uring: the gap is structural, not noise.
    assert!(
        u_sys < e_sys,
        "uring used {u_sys} poller syscalls vs epoll's {e_sys} for the same batch"
    );
    assert!(u_sqe > 0, "uring submitted no SQEs");
    assert!(u_cqe > 0, "uring completed no CQEs");
    assert!(u_saved > 0, "uring reported no syscalls saved");
    // Readiness backends have no submission queue and save nothing.
    assert_eq!(e_sqe, 0, "epoll reported SQEs");
    assert_eq!(e_saved, 0, "epoll reported saved syscalls");
}

/// Serializes the env-flag tests below: `SWEB_URING_*` variables are
/// process-global and the harness runs tests threaded. Clusters read
/// the flags when their shards open the ring, so each test holds the
/// lock from `set_var` until its clusters are done serving.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// With `SWEB_URING_NO_BUFS=1` the full stack must serve byte-identical
/// responses over plain `WRITEV` — zero `WRITE_FIXED` submissions.
#[test]
fn no_bufs_fallback_serves_byte_identical_responses() {
    if !uring_available() {
        return;
    }
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SWEB_URING_NO_BUFS", "1");
    let uring = LiveCluster::start(1, docroot("nobufs-u"), config(IoBackend::Uring)).unwrap();
    let epoll = LiveCluster::start(1, docroot("nobufs-e"), config(IoBackend::Epoll)).unwrap();
    for path in PATHS {
        let a = client::get(&format!("{}{path}", uring.base_url(0))).unwrap();
        let b = client::get(&format!("{}{path}", epoll.base_url(0))).unwrap();
        assert_eq!(a.status, b.status, "{path}: status diverged under NO_BUFS");
        assert_eq!(a.body, b.body, "{path}: body diverged under NO_BUFS");
    }
    std::thread::sleep(Duration::from_millis(50));
    let fixed = uring.node(0).stats.io_write_fixed.get();
    uring.shutdown();
    epoll.shutdown();
    std::env::remove_var("SWEB_URING_NO_BUFS");
    assert_eq!(fixed, 0, "SWEB_URING_NO_BUFS=1 still submitted WRITE_FIXED");
}

/// With `SWEB_URING_NO_ZC=1` — the same fallback a kernel whose probe
/// lacks `SEND_ZC` takes — large cached documents must arrive
/// byte-identical over the plain queued-write path, zero `SEND_ZC`.
#[test]
fn no_zc_probe_fallback_serves_byte_identical_responses() {
    if !uring_available() {
        return;
    }
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SWEB_URING_NO_ZC", "1");
    let uring = LiveCluster::start(1, docroot("nozc-u"), config(IoBackend::Uring)).unwrap();
    let epoll = LiveCluster::start(1, docroot("nozc-e"), config(IoBackend::Epoll)).unwrap();
    // The 200 KiB gif is the SEND_ZC-shaped response; fetch it twice so
    // the second hit is served from cache (the zero-copy-eligible path).
    for path in ["/maps/goleta.gif", "/maps/goleta.gif", "/doc0.txt", "/index.html"] {
        let a = client::get(&format!("{}{path}", uring.base_url(0))).unwrap();
        let b = client::get(&format!("{}{path}", epoll.base_url(0))).unwrap();
        assert_eq!(a.status, b.status, "{path}: status diverged under NO_ZC");
        assert_eq!(a.body, b.body, "{path}: body diverged under NO_ZC");
    }
    std::thread::sleep(Duration::from_millis(50));
    let zc = uring.node(0).stats.io_send_zc.get();
    uring.shutdown();
    epoll.shutdown();
    std::env::remove_var("SWEB_URING_NO_ZC");
    assert_eq!(zc, 0, "SWEB_URING_NO_ZC=1 still submitted SEND_ZC");
}

/// A scripted accept-pause fault must behave identically under uring:
/// connections queue in the kernel backlog during the pause window and
/// complete afterwards — no hangs, no drops — and the injector records
/// the pause firing. This pins the multishot-accept gate handling
/// (Pause parks the listener but still admits the in-flight stream).
#[test]
fn accept_pause_fault_replays_under_uring() {
    if !uring_available() {
        return;
    }
    let plan = FaultPlan::seeded(42)
        .with(Fault::Pause { node: 0, window: Window::between(0, 300) });
    let mut cfg = config(IoBackend::Uring);
    cfg.fault_plan = Some(plan);
    let cluster = LiveCluster::start(1, docroot("pause"), cfg).unwrap();
    let url = format!("{}/doc0.txt", cluster.base_url(0));
    while cluster.chaos().now_ms() < 300 {
        let resp = client::get_with_timeout(&url, Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, 200, "backlogged request must complete after the pause");
    }
    // Recovered: normal service, and the fault left its fingerprint.
    let resp = client::get(&url).unwrap();
    assert_eq!(resp.status, 200);
    let faults = cluster.chaos().counts().snapshot();
    assert!(faults.accepts_paused >= 1, "pause fault never fired under uring");
    cluster.shutdown();
}

/// Keep-alive pipelining through one connection exercises the linked
/// write→poll chain (response queued as WRITEV, next request's readiness
/// riding the linked poll). Every response must still be correct.
#[test]
fn keep_alive_pipeline_survives_linked_chains() {
    if !uring_available() {
        return;
    }
    let cluster = LiveCluster::start(1, docroot("ka"), config(IoBackend::Uring)).unwrap();
    let mut conn = client::Session::connect(cluster.base_url(0)).unwrap();
    for round in 0..20 {
        let path = format!("/doc{}.txt", round % 8);
        let resp = conn.get(&path).unwrap();
        assert_eq!(resp.status, 200, "round {round} failed");
        assert!(
            resp.body.starts_with(format!("uring doc {} ", round % 8).as_bytes()),
            "round {round}: wrong body"
        );
    }
    cluster.shutdown();
}
