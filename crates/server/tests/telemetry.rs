//! Telemetry-surface tests: `/metrics` exposition, the JSON status view,
//! and the `X-SWEB-Trace` id joining one logical request across nodes.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sweb_core::Policy;
use sweb_server::{client, AccessLog, Engine, ServerOptions, StatusReport};
use sweb_telemetry::{line_is_well_formed, Json};

mod support;

/// A `Vec<u8>` log sink shared with the test so it can read back what the
/// cluster wrote (stand-in for an NFS-shared access log file).
#[derive(Clone)]
struct VecSink(Arc<Mutex<Vec<u8>>>);

impl Write for VecSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-tel-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("index.html"), "<html><body>Alexandria</body></html>").unwrap();
    for i in 0..8 {
        std::fs::write(dir.join(format!("doc{i}.txt")), format!("document {i}").repeat(100))
            .unwrap();
    }
    dir
}

macro_rules! engine_tests {
    ($($name:ident),* $(,)?) => {
        mod reactor {
            $(#[test] fn $name() { super::$name(super::Engine::Reactor); })*
        }
        mod threaded {
            $(#[test] fn $name() { super::$name(super::Engine::ThreadPerConn); })*
        }
    };
}

engine_tests!(
    trace_id_joins_access_logs_across_a_redirect_hop,
    metrics_exposition_is_well_formed_and_rich,
    status_json_round_trips_through_the_typed_report,
);

/// A redirected request must carry one trace id end to end: the origin's
/// `302` log line and the home node's `200` log line cite the same token,
/// and the client sees it in the `X-SWEB-Trace` response header.
fn trace_id_joins_access_logs_across_a_redirect_hop(engine: Engine) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let dir = docroot(&format!("trace-{}", engine.name()));
    let cluster = ServerOptions::new()
        .policy(Policy::FileLocality)
        .engine(engine)
        .access_log(AccessLog::new(Box::new(VecSink(Arc::clone(&buf)))))
        .start(2, dir)
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));

    // Find a document homed on node 1 by asking node 0 until one bounces.
    let mut trace = None;
    for i in 0..8 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
        if resp.redirects == 1 {
            trace = Some(
                resp.headers
                    .get("x-sweb-trace")
                    .expect("redirected response must carry X-SWEB-Trace")
                    .to_string(),
            );
            break;
        }
    }
    let trace = trace.expect("at least one of 8 hashed docs must be homed off node 0");

    // Both hops log asynchronously with respect to the response; poll.
    let deadline = Instant::now() + Duration::from_secs(5);
    let (mut saw_302, mut saw_200) = (false, false);
    while Instant::now() < deadline && !(saw_302 && saw_200) {
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        for line in text.lines().filter(|l| l.ends_with(&trace)) {
            saw_302 |= line.contains(" 302 ");
            saw_200 |= line.contains(" 200 ");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_302, "origin's 302 line must carry the trace id");
    assert!(saw_200, "home node's 200 line must carry the same trace id");
    cluster.shutdown();
}

/// Golden-shape test for the Prometheus exposition: after a little traffic
/// every line must match the text format, and the node must export a
/// non-trivial number of distinct series.
fn metrics_exposition_is_well_formed_and_rich(engine: Engine) {
    let dir = docroot(&format!("metrics-{}", engine.name()));
    let cluster =
        ServerOptions::new().policy(Policy::RoundRobin).engine(engine).start(1, dir).unwrap();

    // Touch several code paths so counters and histograms have samples.
    for i in 0..4 {
        let resp = client::get(&format!("{}/doc{i}.txt", cluster.base_url(0))).unwrap();
        assert_eq!(resp.status, 200);
    }
    let resp = client::get(&format!("{}/missing.html", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 404);

    let resp = client::get(&format!("{}/metrics", cluster.base_url(0))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("content-type"), Some("text/plain; version=0.0.4"));
    let text = String::from_utf8(resp.body).unwrap();

    let mut series = 0usize;
    for line in text.lines().filter(|l| !l.is_empty()) {
        assert!(line_is_well_formed(line), "malformed exposition line: {line:?}");
        if !line.starts_with('#') {
            series += 1;
        }
    }
    assert!(series >= 20, "expected >= 20 series, got {series}:\n{text}");
    for must in ["sweb_requests_served_total", "sweb_request_phase_us", "sweb_active_requests"] {
        assert!(text.contains(must), "missing {must}:\n{text}");
    }
    cluster.shutdown();
}

/// `/sweb-status?format=json` must parse back into the same typed
/// [`StatusReport`] the text view renders from.
fn status_json_round_trips_through_the_typed_report(engine: Engine) {
    let dir = docroot(&format!("json-{}", engine.name()));
    let cluster =
        ServerOptions::new().policy(Policy::Sweb).engine(engine).start(2, dir).unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    let _ = client::get(&format!("{}/index.html", cluster.base_url(1))).unwrap();

    let resp = client::get(&format!("{}/sweb-status?format=json", cluster.base_url(1))).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("content-type"), Some("application/json"));
    let value = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let report = StatusReport::from_json(&value).unwrap();
    support::assert_current_schema(&report);
    assert_eq!(report.node, 1);
    assert_eq!(report.engine, engine.name());
    assert_eq!(report.load.len(), 2, "load table must list every node");
    assert!(report.counters.served >= 1);

    // The text endpoint is a *view* of the same report, not a fork.
    let text_resp = client::get(&format!("{}/sweb-status", cluster.base_url(1))).unwrap();
    let text = String::from_utf8(text_resp.body).unwrap();
    assert!(text.contains("SWEB node n1"), "{text}");
    assert!(text.contains(&format!("engine {}", report.engine)), "{text}");
    cluster.shutdown();
}
