//! Shared helpers for the server integration tests.
//!
//! Every suite that reads `/sweb-status?format=json` used to carry its
//! own hard-coded `schema_version == N` assert; a version bump meant a
//! hunt through four test files. The check lives here once instead.

use sweb_server::{StatusReport, STATUS_SCHEMA_VERSION};

/// Assert a parsed status report carries the schema version this tree
/// serves. `from_json` already rejects foreign versions, so this is a
/// belt-and-suspenders check that the parse really went through the
/// current contract — and the single place to touch on a bump.
pub fn assert_current_schema(report: &StatusReport) {
    assert_eq!(
        report.schema_version, STATUS_SCHEMA_VERSION,
        "status report does not carry the current schema version"
    );
}
