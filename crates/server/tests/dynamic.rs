//! End-to-end tests of the dynamic-content fast path: the in-process
//! handler ABI, the `(handler, canonicalized args)` response cache with
//! TTL expiry, the fork-CGI fallback's deadline behavior, and dynamic
//! handlers under injected disk faults.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sweb_core::Policy;
use sweb_http::Response;
use sweb_server::{
    client, DynamicRegistry, Engine, Fault, FaultPlan, ForkCgiHandler, LiveCluster, ServerOptions,
    Window,
};

fn docroot(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sweb-dyn-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("static.txt"), b"a static doc for contrast").unwrap();
    dir
}

/// A registry whose `/cgi-bin/count` handler returns a fresh number per
/// *real* invocation — cache hits are exactly the repeated bodies.
fn counting_registry(counter: Arc<AtomicU64>) -> DynamicRegistry {
    let mut reg = DynamicRegistry::demo();
    reg.register_fn(
        "count",
        Arc::new(move |_req, _body| {
            let n = counter.fetch_add(1, Ordering::SeqCst);
            Response::ok(format!("count: {n}\n"), "text/plain")
        }),
    );
    reg
}

macro_rules! engine_tests {
    ($($name:ident),* $(,)?) => {
        mod reactor {
            $(#[test] fn $name() { super::$name(super::Engine::Reactor); })*
        }
        mod threaded {
            $(#[test] fn $name() { super::$name(super::Engine::ThreadPerConn); })*
        }
    };
}

engine_tests!(
    response_cache_serves_repeats_and_expires_on_ttl,
    cache_keys_isolate_handlers_and_canonicalize_args,
    fork_cgi_child_overrunning_deadline_gets_503,
);

/// Same handler, same args: the second request must be answered from the
/// response cache (identical body, no new invocation); after the TTL the
/// handler must actually run again.
fn response_cache_serves_repeats_and_expires_on_ttl(engine: Engine) {
    let counter = Arc::new(AtomicU64::new(0));
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(engine)
        .handlers(counting_registry(Arc::clone(&counter)))
        .dynamic_cache(64, Duration::from_millis(150))
        .start(1, docroot(&format!("ttl-{}", engine.name())))
        .unwrap();
    let url = format!("{}/cgi-bin/count?run=1", cluster.base_url(0));

    let first = client::get(&url).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(std::str::from_utf8(&first.body).unwrap(), "count: 0\n");
    assert_eq!(first.headers.get("x-sweb-dynamic-cache"), Some("miss"));

    let second = client::get(&url).unwrap();
    assert_eq!(second.body, first.body, "within TTL the cache must answer");
    assert_eq!(second.headers.get("x-sweb-dynamic-cache"), Some("hit"));
    assert_eq!(counter.load(Ordering::SeqCst), 1, "cache hit must not invoke");

    std::thread::sleep(Duration::from_millis(300));
    let third = client::get(&url).unwrap();
    assert_eq!(std::str::from_utf8(&third.body).unwrap(), "count: 1\n", "TTL must expire");
    assert_eq!(third.headers.get("x-sweb-dynamic-cache"), Some("miss"));

    // The per-class stats the status page reports must agree.
    let stats = cluster.node(0).dynamic.class_stats("count").unwrap();
    assert_eq!(stats.invocations.get(), 2);
    assert_eq!(stats.cache_hits.get(), 1);
    cluster.shutdown();
}

/// The cache key is `(handler class, canonicalized args)`: reordered
/// query parameters hit the same entry, different args or a different
/// handler never collide.
fn cache_keys_isolate_handlers_and_canonicalize_args(engine: Engine) {
    let counter = Arc::new(AtomicU64::new(0));
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(engine)
        .handlers(counting_registry(Arc::clone(&counter)))
        .dynamic_cache(64, Duration::from_secs(30))
        .start(1, docroot(&format!("keys-{}", engine.name())))
        .unwrap();
    let base = cluster.base_url(0);

    let ab = client::get(&format!("{base}/cgi-bin/count?a=1&b=2")).unwrap();
    let ba = client::get(&format!("{base}/cgi-bin/count?b=2&a=1")).unwrap();
    assert_eq!(ab.body, ba.body, "reordered args must canonicalize to one key");
    assert_eq!(ba.headers.get("x-sweb-dynamic-cache"), Some("hit"));
    assert_eq!(counter.load(Ordering::SeqCst), 1);

    let other = client::get(&format!("{base}/cgi-bin/count?a=2&b=2")).unwrap();
    assert_ne!(other.body, ab.body, "different args must be a different entry");
    assert_eq!(counter.load(Ordering::SeqCst), 2);

    // Same args, different handler: the echo handler must not be served
    // the count handler's cached body (class is part of the key).
    let echo = client::get(&format!("{base}/cgi-bin/echo?a=1&b=2")).unwrap();
    assert_eq!(echo.status, 200);
    assert_ne!(echo.body, ab.body, "handlers must never share cache entries");
    cluster.shutdown();
}

/// A forked CGI child that outruns the request deadline is killed and
/// reaped, and the client gets a definitive 503 + `Retry-After` — never a
/// hang for the child's full sleep.
fn fork_cgi_child_overrunning_deadline_gets_503(engine: Engine) {
    let dir = docroot(&format!("fork-{}", engine.name()));
    let script = dir.join("hang.sh");
    std::fs::write(&script, "#!/bin/sh\nsleep 30\n").unwrap();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
    }
    let mut reg = DynamicRegistry::demo();
    reg.register("hang", Arc::new(ForkCgiHandler::new(&script)));
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(engine)
        .handlers(reg)
        .request_budget(Duration::from_millis(500))
        .start(1, dir)
        .unwrap();

    let t0 = Instant::now();
    let resp = client::get_with_timeout(
        &format!("{}/cgi-bin/hang", cluster.base_url(0)),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(resp.status, 503, "overrunning child must fail definitively");
    assert_eq!(resp.headers.get("retry-after"), Some("1"));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the child's 30 s sleep must not be waited out: {:?}",
        t0.elapsed()
    );
    assert!(cluster.node(0).stats.deadline_overruns.get() >= 1);
    cluster.shutdown();
}

/// Chaos: a slow disk stalls *static* fetches, while in-process dynamic
/// handlers — which never touch the docroot — keep answering, and every
/// request reaches a definite outcome.
#[test]
fn dynamic_handlers_survive_slow_disk_chaos() {
    let plan = FaultPlan::seeded(7)
        .with(Fault::SlowDisk { node: 0, extra_ms: 800, window: Window::ALWAYS });
    let dir = docroot("chaos");
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .fault_plan(Some(plan))
        .request_budget(Duration::from_millis(400))
        .start(1, dir)
        .unwrap();
    let base = cluster.base_url(0);

    let mut dynamic_ok = 0u32;
    for i in 0..10 {
        // Static fetches crawl through the injected 800 ms stall and may
        // legitimately shed 503 on the 400 ms budget — but never hang.
        let s = client::get_with_timeout(&format!("{base}/static.txt"), Duration::from_secs(5))
            .unwrap();
        assert!(s.status == 200 || s.status == 503, "static got {}", s.status);
        // Dynamic requests take the in-process path: no disk, no stall.
        let t0 = Instant::now();
        let d = client::get_with_timeout(
            &format!("{base}/cgi-bin/echo?i={i}"),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(d.status, 200, "dynamic request {i} failed under slow disk");
        assert!(
            t0.elapsed() < Duration::from_millis(700),
            "dynamic request {i} was stalled by the disk fault: {:?}",
            t0.elapsed()
        );
        dynamic_ok += 1;
    }
    assert_eq!(dynamic_ok, 10);
    cluster.shutdown();
}

/// The burn handler's measured cost must feed the oracle: after a run of
/// invocations the tuned per-class estimate exists and the status page's
/// handler table reports it alongside the measured quantiles.
#[test]
fn oracle_learns_burn_cost_from_measurements() {
    let cluster = ServerOptions::new()
        .policy(Policy::RoundRobin)
        .engine(Engine::Reactor)
        .start(1, docroot("oracle"))
        .unwrap();
    let base = cluster.base_url(0);
    for i in 0..12 {
        // Unique args per request: every one is a real invocation.
        let r = client::get(&format!("{base}/cgi-bin/burn?cost=200000&i={i}")).unwrap();
        assert_eq!(r.status, 200);
    }
    let shared = cluster.node(0);
    let tuned = shared.oracle.tuned_ops("burn").expect("burn measurements must tune the oracle");
    assert!(tuned > 0.0);
    let stats = shared.dynamic.class_stats("burn").unwrap();
    assert_eq!(stats.invocations.get(), 12);
    assert!(stats.tcpu_us.quantile(0.5) > 0, "median measured t_cpu must be recorded");

    // And the JSON status view carries the same table (schema v6).
    let resp = client::get(&format!("{base}/sweb-status?format=json")).unwrap();
    let text = std::str::from_utf8(&resp.body).unwrap();
    let json = sweb_telemetry::Json::parse(text).unwrap();
    let report = sweb_server::StatusReport::from_json(&json).unwrap();
    let row = report
        .handlers
        .iter()
        .find(|r| r.class == "burn")
        .expect("status handler table must list the burn class");
    assert_eq!(row.invocations, 12);
    assert!(row.p50_us > 0);
    assert!((row.oracle_ops - tuned).abs() < tuned * 0.5, "table must show the tuned estimate");
    cluster.shutdown();
}

/// Redirect marking: dynamic requests participate in scheduling but are
/// never peer-fetched — a 2-node locality cluster keeps serving them
/// correctly end to end (the handler output is produced, not stored).
#[test]
fn dynamic_requests_work_across_a_locality_cluster() {
    let dir = docroot("cluster");
    let cluster = ServerOptions::new()
        .policy(Policy::FileLocality)
        .engine(Engine::Reactor)
        .peer_transfer(true)
        .start(2, dir)
        .unwrap();
    assert!(cluster.await_loadd_mesh(Duration::from_secs(5)));
    for node in 0..2 {
        for i in 0..4 {
            let r = client::get(&format!(
                "{}/cgi-bin/template?title=T{i}&name=n{node}",
                cluster.base_url(node)
            ))
            .unwrap();
            assert_eq!(r.status, 200);
            let body = std::str::from_utf8(&r.body).unwrap();
            assert!(body.contains(&format!("T{i}")), "{body}");
        }
    }
    // Peer pulls move *files*; handler output must never ride that path.
    assert_eq!(
        (0..2).map(|i| cluster.node(i).stats.peer_fetches.get()).sum::<u64>(),
        0,
        "dynamic responses must not be peer-fetched"
    );
    cluster.shutdown();
}

/// `LiveCluster` is still constructible without the builder (API compat).
#[test]
fn plain_cluster_config_still_works() {
    let dir = docroot("compat");
    let cfg = sweb_server::ClusterConfig::default();
    let cluster = LiveCluster::start(1, dir, cfg).unwrap();
    let r = client::get(&format!("{}/cgi-bin/echo?q=old-api", cluster.base_url(0))).unwrap();
    assert_eq!(r.status, 200);
    assert!(std::str::from_utf8(&r.body).unwrap().contains("old-api"));
    cluster.shutdown();
}
