//! Property tests for the log-binned histogram.

use proptest::prelude::*;
use sweb_metrics::Histogram;

proptest! {
    /// Quantiles are monotone in q, bounded by min/max, and the count/mean
    /// are exact.
    #[test]
    fn quantile_sanity(values in proptest::collection::vec(0u64..10_000_000, 1..500)) {
        let mut h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact_mean = sum as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6 * exact_mean.max(1.0));
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantiles must be monotone: q{q} gave {v} < {prev}");
            prop_assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
    }

    /// The binned quantile is within the bin's relative error (~6 %) of
    /// the exact order statistic.
    #[test]
    fn quantile_accuracy(values in proptest::collection::vec(1u64..1_000_000, 10..400)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = h.quantile(q) as f64;
            let err = (approx - exact).abs() / exact.max(1.0);
            prop_assert!(err <= 0.07, "q{q}: approx {approx} vs exact {exact} ({err:.3})");
        }
    }

    /// merge(a, b) behaves like recording the concatenation.
    #[test]
    fn merge_is_concat(
        a_vals in proptest::collection::vec(0u64..1_000_000, 0..200),
        b_vals in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &v in &a_vals {
            a.record(v);
            all.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert_eq!(a.min(), all.min());
        prop_assert_eq!(a.max(), all.max());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9 * all.mean().max(1.0));
        for q in [0.25, 0.5, 0.9] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "q{} after merge", q);
        }
    }
}
