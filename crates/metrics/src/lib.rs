//! # sweb-metrics — measurement plumbing for the SWEB experiments
//!
//! * [`Histogram`] — log-binned latency histogram (HDR-style: ~2.3 %
//!   relative error per bin) for response times;
//! * [`PhaseBreakdown`] — per-phase time accumulation matching the paper's
//!   Table 5 (preprocessing, analysis, redirection, data transfer, network);
//! * [`RunStats`] — everything one experiment run produces: completions,
//!   drops, refusals, per-phase averages, per-node counters;
//! * [`TextTable`] — aligned text tables and CSV for EXPERIMENTS.md.

#![warn(missing_docs)]

mod hist;
mod phases;
mod summary;
mod table;
mod timeseries;

pub use hist::Histogram;
pub use phases::{Phase, PhaseBreakdown};
pub use summary::{NodeCounters, RunStats};
pub use table::{fmt_pct, fmt_secs, TextTable};
pub use timeseries::{sparkline, Bucket, TimeSeries};
