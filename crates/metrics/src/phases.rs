//! Per-phase time accounting (the paper's Table 5).

use sweb_des::SimTime;

/// The phases of one HTTP request's lifetime, as instrumented in §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Parsing HTTP commands, completing the pathname, permission checks.
    Preprocessing,
    /// Broker cost estimation ("Req. Analysis (SWEB)").
    Analysis,
    /// Generating the 302 plus the client's extra round trip
    /// ("Redirection (SWEB)").
    Redirection,
    /// Reading the document from disk/NFS ("Data Transfer").
    DataTransfer,
    /// Sending the response to the client ("Network Costs").
    Network,
    /// Waiting in queues (accept backlog, resource queues) — not a Table 5
    /// row, but dominates under overload and explains drop behaviour.
    Queueing,
}

impl Phase {
    /// All phases, in Table 5 order.
    pub const ALL: [Phase; 6] = [
        Phase::Preprocessing,
        Phase::Analysis,
        Phase::Redirection,
        Phase::DataTransfer,
        Phase::Network,
        Phase::Queueing,
    ];

    /// Display label matching the paper's Table 5 rows.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Preprocessing => "Preprocessing",
            Phase::Analysis => "Req. Analysis (SWEB)",
            Phase::Redirection => "Redirection (SWEB)",
            Phase::DataTransfer => "Data Transfer",
            Phase::Network => "Network Costs",
            Phase::Queueing => "Queueing",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Preprocessing => 0,
            Phase::Analysis => 1,
            Phase::Redirection => 2,
            Phase::DataTransfer => 3,
            Phase::Network => 4,
            Phase::Queueing => 5,
        }
    }
}

/// Accumulated time per phase across many requests, plus how many requests
/// contributed to each phase (a request with no redirect adds nothing to
/// the redirect phase).
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    totals_us: [u64; 6],
    counts: [u64; 6],
}

impl PhaseBreakdown {
    /// Empty accumulator.
    pub fn new() -> Self {
        PhaseBreakdown::default()
    }

    /// Add `dt` to `phase` for one request.
    pub fn add(&mut self, phase: Phase, dt: SimTime) {
        let i = phase.index();
        self.totals_us[i] += dt.as_micros();
        self.counts[i] += 1;
    }

    /// Total accumulated time in `phase`.
    pub fn total(&self, phase: Phase) -> SimTime {
        SimTime::from_micros(self.totals_us[phase.index()])
    }

    /// Mean time in `phase` over the requests that *entered* that phase.
    pub fn mean_secs(&self, phase: Phase) -> f64 {
        let i = phase.index();
        if self.counts[i] == 0 {
            0.0
        } else {
            self.totals_us[i] as f64 / 1e6 / self.counts[i] as f64
        }
    }

    /// Mean time in `phase` averaged over `n` requests (Table 5 averages
    /// over all requests, including those that skipped the phase).
    pub fn mean_secs_over(&self, phase: Phase, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.totals_us[phase.index()] as f64 / 1e6 / n as f64
        }
    }

    /// How many requests entered `phase`.
    pub fn entered(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum of all phase totals (seconds).
    pub fn grand_total_secs(&self) -> f64 {
        self.totals_us.iter().sum::<u64>() as f64 / 1e6
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for i in 0..6 {
            self.totals_us[i] += other.totals_us[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Fraction of total time spent in `phase` (0 when nothing recorded).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let g = self.grand_total_secs();
        if g == 0.0 {
            0.0
        } else {
            self.total(phase).as_secs_f64() / g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_means() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Preprocessing, SimTime::from_millis(70));
        b.add(Phase::Preprocessing, SimTime::from_millis(70));
        b.add(Phase::DataTransfer, SimTime::from_millis(4900));
        assert_eq!(b.entered(Phase::Preprocessing), 2);
        assert!((b.mean_secs(Phase::Preprocessing) - 0.070).abs() < 1e-9);
        assert!((b.mean_secs(Phase::DataTransfer) - 4.9).abs() < 1e-9);
        // Averaged over both requests, data transfer is 2.45 s.
        assert!((b.mean_secs_over(Phase::DataTransfer, 2) - 2.45).abs() < 1e-9);
        assert_eq!(b.mean_secs(Phase::Redirection), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Preprocessing, SimTime::from_millis(100));
        b.add(Phase::DataTransfer, SimTime::from_millis(300));
        let sum: f64 = Phase::ALL.iter().map(|&p| b.fraction(p)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b.fraction(Phase::DataTransfer) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = PhaseBreakdown::new();
        let mut b = PhaseBreakdown::new();
        a.add(Phase::Analysis, SimTime::from_millis(2));
        b.add(Phase::Analysis, SimTime::from_millis(4));
        b.add(Phase::Network, SimTime::from_millis(500));
        a.merge(&b);
        assert_eq!(a.entered(Phase::Analysis), 2);
        assert!((a.mean_secs(Phase::Analysis) - 0.003).abs() < 1e-9);
        assert_eq!(a.total(Phase::Network), SimTime::from_millis(500));
    }

    #[test]
    fn labels_match_table5() {
        assert_eq!(Phase::Analysis.label(), "Req. Analysis (SWEB)");
        assert_eq!(Phase::Network.label(), "Network Costs");
    }
}
