//! Per-second time series of completions and response times — the data
//! behind "figure-style" plots (cache warmup, burst queueing, failures).

use sweb_des::SimTime;

/// One time bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bucket {
    /// Requests completed in this bucket.
    pub completed: u64,
    /// Requests dropped in this bucket.
    pub dropped: u64,
    /// Sum of response times of the completions, µs.
    pub response_sum_us: u64,
}

impl Bucket {
    /// Mean response in seconds over this bucket's completions (0 if none).
    pub fn mean_response_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.response_sum_us as f64 / 1e6 / self.completed as f64
        }
    }
}

/// Fixed-width time buckets accumulating outcomes.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_width: SimTime,
    buckets: Vec<Bucket>,
}

impl TimeSeries {
    /// A series with `bucket_width` buckets (typically one second).
    pub fn new(bucket_width: SimTime) -> Self {
        assert!(bucket_width > SimTime::ZERO, "zero bucket width");
        TimeSeries { bucket_width, buckets: Vec::new() }
    }

    fn bucket_mut(&mut self, at: SimTime) -> &mut Bucket {
        let idx = (at.as_micros() / self.bucket_width.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Bucket::default());
        }
        &mut self.buckets[idx]
    }

    /// Record a completion at `at` with the given response time.
    pub fn record_completion(&mut self, at: SimTime, response: SimTime) {
        let b = self.bucket_mut(at);
        b.completed += 1;
        b.response_sum_us += response.as_micros();
    }

    /// Record a drop at `at`.
    pub fn record_drop(&mut self, at: SimTime) {
        self.bucket_mut(at).dropped += 1;
    }

    /// The buckets, index 0 starting at time zero.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimTime {
        self.bucket_width
    }

    /// Render mean response per bucket as a unicode sparkline.
    pub fn response_sparkline(&self) -> String {
        sparkline(&self.buckets.iter().map(|b| b.mean_response_secs()).collect::<Vec<_>>())
    }

    /// Render completions per bucket as a unicode sparkline.
    pub fn throughput_sparkline(&self) -> String {
        sparkline(&self.buckets.iter().map(|b| b.completed as f64).collect::<Vec<_>>())
    }

    /// CSV: `t_start_s,completed,dropped,mean_response_s`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_start_s,completed,dropped,mean_response_s\n");
        let w = self.bucket_width.as_secs_f64();
        for (i, b) in self.buckets.iter().enumerate() {
            out.push_str(&format!(
                "{:.1},{},{},{:.4}\n",
                i as f64 * w,
                b.completed,
                b.dropped,
                b.mean_response_secs()
            ));
        }
        out
    }
}

/// Render values as a unicode sparkline (▁▂▃▄▅▆▇█), scaled to the max.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return BARS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn bucketing_by_time() {
        let mut ts = TimeSeries::new(SimTime::from_secs(1));
        ts.record_completion(t(0.2), t(1.0));
        ts.record_completion(t(0.9), t(3.0));
        ts.record_completion(t(2.5), t(2.0));
        ts.record_drop(t(2.9));
        let b = ts.buckets();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].completed, 2);
        assert!((b[0].mean_response_secs() - 2.0).abs() < 1e-9);
        assert_eq!(b[1], Bucket::default());
        assert_eq!(b[2].completed, 1);
        assert_eq!(b[2].dropped, 1);
    }

    #[test]
    fn csv_has_one_row_per_bucket() {
        let mut ts = TimeSeries::new(SimTime::from_secs(1));
        ts.record_completion(t(1.5), t(0.5));
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 buckets
        assert_eq!(lines[2], "1.0,1,0,0.5000");
    }

    #[test]
    fn sparkline_scales_to_max() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Flat-zero series renders as all-low without dividing by zero.
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    #[should_panic]
    fn zero_width_buckets_rejected() {
        let _ = TimeSeries::new(SimTime::ZERO);
    }
}
