//! Aligned text tables and CSV output for experiment reports.

/// A simple column-aligned text table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable { title: title.into(), header: Vec::new(), rows: Vec::new() }
    }

    /// Set the column headers.
    pub fn header(mut self, cols: &[&str]) -> Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a data row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text block (title, rule, header, rows).
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
            out.push_str(&"-".repeat(self.title.len().min(78)));
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric = c.chars().next().map(|ch| ch.is_ascii_digit() || ch == '-' || ch == '.').unwrap_or(false)
                    && c.chars().all(|ch| ch.is_ascii_digit() || ".-%eE+".contains(ch));
                if numeric {
                    line.push_str(&format!("{:>width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored Markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        let esc = |c: &str| c.replace('|', "\\|");
        if !self.header.is_empty() {
            out.push_str("| ");
            out.push_str(&self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n|");
            out.push_str(&"---|".repeat(self.header.len()));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out.push('\n');
        out
    }

    /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        if !self.header.is_empty() {
            out.push_str(&self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with adaptive precision ("1.52", "0.081", "81.4").
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else if s >= 0.1 {
        format!("{s:.2}")
    } else {
        format!("{s:.3}")
    }
}

/// Format a fraction as a percentage ("37.3%").
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Table X").header(&["rps", "policy", "time"]);
        t.row(vec!["8".into(), "RoundRobin".into(), "3.70".into()]);
        t.row(vec!["16".into(), "SWEB".into(), "12.45".into()]);
        let s = t.render();
        assert!(s.contains("Table X"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + rule + title + 2 rows.
        assert_eq!(lines.len(), 5);
        // Numeric columns right-aligned under the 3-wide "rps" header.
        assert!(lines[3].starts_with("  8"), "{:?}", lines[3]);
        assert!(lines[4].starts_with(" 16"), "{:?}", lines[4]);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new("Table X").header(&["rps", "who|what"]);
        t.row(vec!["8".into(), "a|b".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Table X\n"));
        assert!(md.contains("| rps | who\\|what |"), "{md}");
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 8 | a\\|b |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new("").header(&["a", "b"]);
        t.row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(81.4), "81.4");
        assert_eq!(fmt_secs(3.7), "3.70");
        assert_eq!(fmt_secs(0.07), "0.070");
        assert_eq!(fmt_secs(123.0), "123");
        assert_eq!(fmt_pct(0.373), "37.3%");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new("Empty");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("Empty"));
    }
}
