//! Log-binned latency histogram.

/// A histogram over microsecond values with logarithmic bins: 32 linear
/// sub-buckets per power of two, giving ≤ ~3 % relative error per bin while
/// staying a fixed, allocation-free size. Suitable for response times from
/// microseconds to hours.
///
/// ```
/// use sweb_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v * 1000); // 1ms .. 1s
/// }
/// assert_eq!(h.count(), 1000);
/// let median_ms = h.quantile(0.5) as f64 / 1000.0;
/// assert!((median_ms - 500.0).abs() < 40.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// bins[e][m]: values with exponent `e` (bit length) and mantissa
    /// sub-bucket `m`.
    bins: Vec<[u64; Histogram::SUB]>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    const SUB: usize = 32;
    const SUB_BITS: u32 = 5;
    const EXPONENTS: usize = 64;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            bins: vec![[0; Histogram::SUB]; Histogram::EXPONENTS],
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bin_of(value: u64) -> (usize, usize) {
        if value < Histogram::SUB as u64 {
            return (0, value as usize);
        }
        let e = 63 - value.leading_zeros(); // value >= 32 => e >= 5
        let shift = e - Histogram::SUB_BITS;
        let m = ((value >> shift) - Histogram::SUB as u64) as usize;
        ((e - Histogram::SUB_BITS + 1) as usize, m)
    }

    /// Representative (lower-bound) value of a bin.
    fn bin_floor(e: usize, m: usize) -> u64 {
        if e == 0 {
            m as u64
        } else {
            (Histogram::SUB as u64 + m as u64) << (e - 1)
        }
    }

    /// Record one value (microseconds).
    pub fn record(&mut self, value: u64) {
        let (e, m) = Histogram::bin_of(value);
        self.bins[e][m] += 1;
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of recorded values (not binned).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum, 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum, 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1) from bin floors. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (e, row) in self.bins.iter().enumerate() {
            for (m, &c) in row.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Histogram::bin_floor(e, m).min(self.max).max(self.min);
                }
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a += b;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_stats() {
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn quantiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.05, "q{q}: got {got}, want ~{expect} ({err:.3} rel err)");
        }
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0 / 32.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn large_values_do_not_overflow_bins() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        h.record(3_600_000_000); // one hour in µs
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) >= 3_000_000_000);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100 {
            a.record(v);
        }
        for v in 101..=200 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
        let med = a.quantile(0.5) as f64;
        assert!((med - 100.0).abs() / 100.0 < 0.06, "median after merge: {med}");
    }

    #[test]
    fn bin_floor_inverts_bin_of() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 123456, u64::MAX / 2] {
            let (e, m) = Histogram::bin_of(v);
            let floor = Histogram::bin_floor(e, m);
            assert!(floor <= v, "floor {floor} > value {v}");
            // Relative bin width bound: 1/32 of the value's magnitude.
            if v >= 32 {
                assert!((v - floor) as f64 / v as f64 <= 1.0 / 16.0, "bin too wide at {v}");
            }
        }
    }
}
