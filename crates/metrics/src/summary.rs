//! Per-run statistics.

use sweb_des::SimTime;

use crate::hist::Histogram;
use crate::phases::PhaseBreakdown;

/// Per-node counters accumulated during a run.
#[derive(Debug, Clone, Default)]
pub struct NodeCounters {
    /// Requests that arrived at this node (via DNS or redirect).
    pub arrived: u64,
    /// Requests this node fulfilled.
    pub served: u64,
    /// Requests this node redirected away.
    pub redirected_away: u64,
    /// Requests this node served after pulling the document from a peer
    /// over the transfer channel (no client-visible redirect).
    pub peer_fetches: u64,
    /// Connections refused at this node (backlog full).
    pub refused: u64,
    /// CPU ops spent on request fulfillment.
    pub fulfill_ops: f64,
    /// CPU ops spent parsing/preprocessing.
    pub preprocess_ops: f64,
    /// CPU ops spent on broker analysis + redirect generation.
    pub scheduling_ops: f64,
    /// CPU ops spent on loadd monitoring/broadcasts.
    pub loadd_ops: f64,
    /// Page-cache hits / misses on this node.
    pub cache_hits: u64,
    /// Page-cache misses on this node.
    pub cache_misses: u64,
    /// Seconds this node's CPU had at least one job.
    pub cpu_busy_secs: f64,
    /// Seconds this node's disk channel had at least one transfer.
    pub disk_busy_secs: f64,
    /// Seconds this node's network interface had at least one flow
    /// (0 on shared-bus clusters, where the bus is cluster-wide).
    pub net_busy_secs: f64,
    /// CGI requests answered from this node's own result cache.
    pub cgi_local_hits: u64,
    /// CGI requests answered by fetching a peer's cached result.
    pub cgi_peer_hits: u64,
    /// CGI requests that had to be computed.
    pub cgi_computed: u64,
    /// loadd datagrams this node sent to same-site peers.
    pub loadd_msgs_local: u64,
    /// loadd datagrams this node sent across the WAN.
    pub loadd_msgs_wan: u64,
}

/// Everything one experiment run produces.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Response-time histogram (µs) over completed requests.
    pub response: Histogram,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests dropped: timed out or refused at connection time.
    pub dropped: u64,
    /// Of the dropped, how many were connection refusals.
    pub refused: u64,
    /// Requests that were redirected exactly once.
    pub redirected: u64,
    /// Total requests issued by the workload.
    pub offered: u64,
    /// Per-phase time accounting.
    pub phases: PhaseBreakdown,
    /// Per-node counters.
    pub nodes: Vec<NodeCounters>,
    /// Wall-clock (simulated) duration of the run.
    pub duration: SimTime,
    /// Total CPU capacity available during the run (Σ node speed × time),
    /// in ops. Zero when the runner does not track it.
    pub cpu_capacity_ops: f64,
    /// Per-second outcome time series (warmup/burst/failure dynamics).
    pub timeline: crate::timeseries::TimeSeries,
}

impl RunStats {
    /// Empty stats for an `n`-node run.
    pub fn new(n: usize) -> Self {
        RunStats {
            response: Histogram::new(),
            completed: 0,
            dropped: 0,
            refused: 0,
            redirected: 0,
            offered: 0,
            phases: PhaseBreakdown::new(),
            nodes: (0..n).map(|_| NodeCounters::default()).collect(),
            duration: SimTime::ZERO,
            cpu_capacity_ops: 0.0,
            timeline: crate::timeseries::TimeSeries::new(SimTime::from_secs(1)),
        }
    }

    /// Fraction of *available* CPU cycles a class of work consumed — the
    /// §4.3 accounting ("4.4% of CPU cycles are used for parsing ...
    /// approximately 0.2% of the available CPU is used for load
    /// monitoring"). Returns 0 when capacity is untracked.
    pub fn of_capacity(&self, ops: f64) -> f64 {
        if self.cpu_capacity_ops == 0.0 {
            0.0
        } else {
            ops / self.cpu_capacity_ops
        }
    }

    /// Preprocessing ops as a fraction of available cycles.
    pub fn preprocess_of_capacity(&self) -> f64 {
        self.of_capacity(self.nodes.iter().map(|n| n.preprocess_ops).sum())
    }

    /// Scheduling (analysis + redirect generation) ops as a fraction of
    /// available cycles.
    pub fn scheduling_of_capacity(&self) -> f64 {
        self.of_capacity(self.nodes.iter().map(|n| n.scheduling_ops).sum())
    }

    /// loadd ops as a fraction of available cycles.
    pub fn loadd_of_capacity(&self) -> f64 {
        self.of_capacity(self.nodes.iter().map(|n| n.loadd_ops).sum())
    }

    /// Fraction of offered requests that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Mean response time in seconds over completed requests.
    pub fn mean_response_secs(&self) -> f64 {
        self.response.mean() / 1e6
    }

    /// `q`-quantile response time in seconds.
    pub fn response_quantile_secs(&self, q: f64) -> f64 {
        self.response.quantile(q) as f64 / 1e6
    }

    /// Completed requests per second of run duration.
    pub fn throughput_rps(&self) -> f64 {
        let d = self.duration.as_secs_f64();
        if d == 0.0 {
            0.0
        } else {
            self.completed as f64 / d
        }
    }

    /// Fraction of completed requests that went through a redirect.
    pub fn redirect_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.redirected as f64 / self.completed as f64
        }
    }

    /// Fraction of completed requests served via a peer-channel pull.
    pub fn peer_fetch_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            let pulls: u64 = self.nodes.iter().map(|n| n.peer_fetches).sum();
            pulls as f64 / self.completed as f64
        }
    }

    /// Aggregate cache hit ratio across nodes.
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits: u64 = self.nodes.iter().map(|n| n.cache_hits).sum();
        let misses: u64 = self.nodes.iter().map(|n| n.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Scheduling overhead as a fraction of all CPU ops spent — the §4.3
    /// "less than 0.01% ... for collecting load information and making
    /// scheduling decisions" measurement.
    pub fn scheduling_cpu_fraction(&self) -> f64 {
        let sched: f64 = self.nodes.iter().map(|n| n.scheduling_ops).sum();
        let total = self.total_cpu_ops();
        if total == 0.0 {
            0.0
        } else {
            sched / total
        }
    }

    /// loadd overhead as a fraction of all CPU ops spent (§4.3: ~0.2 %).
    pub fn loadd_cpu_fraction(&self) -> f64 {
        let loadd: f64 = self.nodes.iter().map(|n| n.loadd_ops).sum();
        let total = self.total_cpu_ops();
        if total == 0.0 {
            0.0
        } else {
            loadd / total
        }
    }

    /// Preprocessing (HTTP parsing) as a fraction of all CPU ops (§4.3:
    /// ~4.4 % at 16 rps with 1.5 MB files).
    pub fn preprocess_cpu_fraction(&self) -> f64 {
        let pre: f64 = self.nodes.iter().map(|n| n.preprocess_ops).sum();
        let total = self.total_cpu_ops();
        if total == 0.0 {
            0.0
        } else {
            pre / total
        }
    }

    fn total_cpu_ops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.fulfill_ops + n.preprocess_ops + n.scheduling_ops + n.loadd_ops)
            .sum()
    }

    /// Fraction of CGI requests that avoided computation thanks to
    /// (cooperative) result caching. 0 when no CGI ran.
    pub fn cgi_cache_effectiveness(&self) -> f64 {
        let hits: u64 = self.nodes.iter().map(|n| n.cgi_local_hits + n.cgi_peer_hits).sum();
        let computed: u64 = self.nodes.iter().map(|n| n.cgi_computed).sum();
        if hits + computed == 0 {
            0.0
        } else {
            hits as f64 / (hits + computed) as f64
        }
    }

    /// Mean CPU utilization across nodes over the run duration.
    pub fn mean_cpu_utilization(&self) -> f64 {
        let d = self.duration.as_secs_f64();
        if d == 0.0 || self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.cpu_busy_secs).sum::<f64>() / (d * self.nodes.len() as f64)
    }

    /// Mean disk utilization across nodes over the run duration.
    pub fn mean_disk_utilization(&self) -> f64 {
        let d = self.duration.as_secs_f64();
        if d == 0.0 || self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.disk_busy_secs).sum::<f64>() / (d * self.nodes.len() as f64)
    }

    /// Pool another run of the *same experiment* into this one (the
    /// paper's methodology: "the results we report are average
    /// performances by running the same tests multiple times"). Counters
    /// add, histograms and phase breakdowns merge (so means and quantiles
    /// become pooled statistics), and durations *add* — which keeps
    /// throughput and utilization correct as pooled averages. The
    /// per-second timeline keeps the first run's data only.
    pub fn absorb(&mut self, other: &RunStats) {
        assert_eq!(self.nodes.len(), other.nodes.len(), "different cluster sizes");
        self.response.merge(&other.response);
        self.completed += other.completed;
        self.dropped += other.dropped;
        self.refused += other.refused;
        self.redirected += other.redirected;
        self.offered += other.offered;
        self.phases.merge(&other.phases);
        self.duration += other.duration;
        self.cpu_capacity_ops += other.cpu_capacity_ops;
        for (mine, theirs) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            mine.arrived += theirs.arrived;
            mine.served += theirs.served;
            mine.redirected_away += theirs.redirected_away;
            mine.peer_fetches += theirs.peer_fetches;
            mine.refused += theirs.refused;
            mine.fulfill_ops += theirs.fulfill_ops;
            mine.preprocess_ops += theirs.preprocess_ops;
            mine.scheduling_ops += theirs.scheduling_ops;
            mine.loadd_ops += theirs.loadd_ops;
            mine.cache_hits += theirs.cache_hits;
            mine.cache_misses += theirs.cache_misses;
            mine.cpu_busy_secs += theirs.cpu_busy_secs;
            mine.disk_busy_secs += theirs.disk_busy_secs;
            mine.net_busy_secs += theirs.net_busy_secs;
            mine.cgi_local_hits += theirs.cgi_local_hits;
            mine.cgi_peer_hits += theirs.cgi_peer_hits;
            mine.cgi_computed += theirs.cgi_computed;
            mine.loadd_msgs_local += theirs.loadd_msgs_local;
            mine.loadd_msgs_wan += theirs.loadd_msgs_wan;
        }
    }

    /// Sanity: arrived = served + redirected_away + refused per node must
    /// cover all offered requests globally (modulo in-flight at cutoff).
    pub fn conservation_slack(&self) -> i64 {
        let outcomes = self.completed + self.dropped;
        self.offered as i64 - outcomes as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = RunStats::new(2);
        s.offered = 100;
        s.completed = 90;
        s.dropped = 10;
        s.refused = 4;
        s.redirected = 30;
        s.duration = SimTime::from_secs(30);
        for _ in 0..90 {
            s.response.record(2_000_000);
        }
        assert!((s.drop_rate() - 0.1).abs() < 1e-12);
        assert!((s.throughput_rps() - 3.0).abs() < 1e-12);
        assert!((s.mean_response_secs() - 2.0).abs() < 1e-9);
        assert!((s.redirect_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.conservation_slack(), 0);
    }

    #[test]
    fn cpu_fractions() {
        let mut s = RunStats::new(1);
        s.nodes[0].fulfill_ops = 9_000.0;
        s.nodes[0].preprocess_ops = 440.0;
        s.nodes[0].scheduling_ops = 1.0;
        s.nodes[0].loadd_ops = 20.0;
        let total = 9_461.0;
        assert!((s.preprocess_cpu_fraction() - 440.0 / total).abs() < 1e-9);
        assert!(s.scheduling_cpu_fraction() < 0.001);
        assert!((s.loadd_cpu_fraction() - 20.0 / total).abs() < 1e-9);
        // Capacity-based accounting (the paper's §4.3 denominators).
        assert_eq!(s.preprocess_of_capacity(), 0.0, "untracked capacity reads as zero");
        s.cpu_capacity_ops = 44_000.0;
        assert!((s.preprocess_of_capacity() - 0.01).abs() < 1e-9);
        assert!((s.loadd_of_capacity() - 20.0 / 44_000.0).abs() < 1e-9);
        assert!(s.scheduling_of_capacity() < 1e-4);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunStats::new(3);
        assert_eq!(s.drop_rate(), 0.0);
        assert_eq!(s.throughput_rps(), 0.0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.scheduling_cpu_fraction(), 0.0);
    }

    #[test]
    fn absorb_pools_runs_correctly() {
        let mut a = RunStats::new(2);
        a.offered = 10;
        a.completed = 9;
        a.dropped = 1;
        a.duration = SimTime::from_secs(30);
        a.nodes[0].cpu_busy_secs = 15.0;
        for _ in 0..9 {
            a.response.record(1_000_000);
        }
        let mut b = RunStats::new(2);
        b.offered = 10;
        b.completed = 10;
        b.duration = SimTime::from_secs(30);
        b.nodes[0].cpu_busy_secs = 15.0;
        for _ in 0..10 {
            b.response.record(3_000_000);
        }
        a.absorb(&b);
        assert_eq!(a.offered, 20);
        assert_eq!(a.completed, 19);
        assert!((a.drop_rate() - 0.05).abs() < 1e-12);
        // Pooled mean: (9*1 + 10*3)/19 s.
        let expect = (9.0 + 30.0) / 19.0;
        assert!((a.mean_response_secs() - expect).abs() < 1e-6);
        // Utilization over pooled duration: 30s busy / (60s * 2 nodes).
        assert!((a.mean_cpu_utilization() - 0.25).abs() < 1e-9);
        assert_eq!(a.response.count(), 19);
    }

    #[test]
    fn cache_ratio_aggregates_nodes() {
        let mut s = RunStats::new(2);
        s.nodes[0].cache_hits = 30;
        s.nodes[0].cache_misses = 10;
        s.nodes[1].cache_hits = 10;
        s.nodes[1].cache_misses = 30;
        assert!((s.cache_hit_ratio() - 0.5).abs() < 1e-12);
    }
}
