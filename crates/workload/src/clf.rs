//! Replay real server logs: NCSA Common Log Format parsing.
//!
//! The NCSA httpd SWEB was built on wrote access logs in CLF:
//!
//! ```text
//! host ident authuser [10/Oct/1995:13:55:36 -0700] "GET /map.gif HTTP/1.0" 200 2326
//! ```
//!
//! [`parse_clf_line`] extracts what the simulator needs (time-of-day,
//! path, response size) and [`trace_to_workload`] converts a parsed trace
//! into a file corpus plus an arrival schedule, so real 1990s access logs
//! (or logs from the live `swebd` cluster) can drive the simulator.

use std::collections::HashMap;

use sweb_cluster::{FileId, FileMap, FileMeta, Placement};
use sweb_des::SimTime;

use crate::arrivals::Arrival;

/// One parsed access-log record.
#[derive(Debug, Clone, PartialEq)]
pub struct ClfRecord {
    /// Client host (name or address).
    pub host: String,
    /// Seconds since midnight of the log's first day (CLF has absolute
    /// timestamps; we only need relative arrival times).
    pub time_of_day: u64,
    /// Request method token.
    pub method: String,
    /// Request target (path + query).
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Response size in bytes (`-` parses as 0).
    pub bytes: u64,
}

/// Parse one CLF line. Returns `None` for malformed lines (real logs have
/// them; callers count and skip).
pub fn parse_clf_line(line: &str) -> Option<ClfRecord> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    // host ident authuser [timestamp] "request" status bytes
    let (host, rest) = line.split_once(' ')?;
    let bracket_start = rest.find('[')?;
    let bracket_end = rest.find(']')?;
    let timestamp = &rest[bracket_start + 1..bracket_end];
    let after = &rest[bracket_end + 1..];
    let quote_start = after.find('"')?;
    let quote_end = after[quote_start + 1..].find('"')? + quote_start + 1;
    let request = &after[quote_start + 1..quote_end];
    let tail: Vec<&str> = after[quote_end + 1..].split_ascii_whitespace().collect();
    if tail.len() < 2 {
        return None;
    }
    let status: u16 = tail[0].parse().ok()?;
    let bytes: u64 = if tail[1] == "-" { 0 } else { tail[1].parse().ok()? };

    // Timestamp: dd/Mon/yyyy:HH:MM:SS zone — we need HH:MM:SS.
    let mut time_parts = timestamp.split(':');
    let _date = time_parts.next()?;
    let hh: u64 = time_parts.next()?.parse().ok()?;
    let mm: u64 = time_parts.next()?.parse().ok()?;
    let ss: u64 = time_parts.next()?.split_ascii_whitespace().next()?.parse().ok()?;
    if hh > 23 || mm > 59 || ss > 60 {
        return None;
    }

    let mut req_parts = request.split_ascii_whitespace();
    let method = req_parts.next()?.to_string();
    let path = req_parts.next()?.to_string();

    Some(ClfRecord {
        host: host.to_string(),
        time_of_day: hh * 3600 + mm * 60 + ss,
        method,
        path,
        status,
        bytes,
    })
}

/// Parse a whole log. Returns the good records and the count of skipped
/// (malformed) lines.
pub fn parse_clf(text: &str) -> (Vec<ClfRecord>, usize) {
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_clf_line(line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    (records, skipped)
}

/// Convert a parsed trace into simulator inputs: a corpus (one file per
/// distinct path, sized by the largest logged response for it, placed by
/// `placement` on `p` nodes) and arrivals relative to the first record.
/// Only successful GETs are replayed (what SWEB serves).
pub fn trace_to_workload(
    records: &[ClfRecord],
    p: usize,
    placement: Placement,
) -> (FileMap, Vec<Arrival>) {
    let mut path_ids: HashMap<&str, FileId> = HashMap::new();
    let mut sizes: Vec<u64> = Vec::new();
    let mut arrivals = Vec::new();
    let replayable = records
        .iter()
        .filter(|r| r.method == "GET" && (200..400).contains(&r.status));
    let t0 = records.iter().map(|r| r.time_of_day).min().unwrap_or(0);
    for r in replayable {
        let next_id = FileId(path_ids.len() as u64);
        let id = *path_ids.entry(r.path.as_str()).or_insert(next_id);
        if id.0 as usize == sizes.len() {
            sizes.push(r.bytes.max(1));
        } else {
            sizes[id.0 as usize] = sizes[id.0 as usize].max(r.bytes.max(1));
        }
        arrivals.push(Arrival { at: SimTime::from_secs(r.time_of_day - t0), file: id });
    }
    arrivals.sort_by_key(|a| a.at);
    let metas: Vec<FileMeta> = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| FileMeta {
            id: FileId(i as u64),
            size,
            home: placement.home(FileId(i as u64), p),
        })
        .collect();
    (FileMap::from_metas(metas), arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"wile.cs.ucsb.edu - - [10/Oct/1995:13:55:36 -0700] "GET /maps/goleta.gif HTTP/1.0" 200 1500000
road.runner.edu - frank [10/Oct/1995:13:55:37 -0700] "GET /index.html HTTP/1.0" 200 2326
wile.cs.ucsb.edu - - [10/Oct/1995:13:55:37 -0700] "GET /missing.gif HTTP/1.0" 404 -
bad line that should not parse
wile.cs.ucsb.edu - - [10/Oct/1995:13:56:06 -0700] "POST /cgi-bin/form HTTP/1.0" 200 120
road.runner.edu - - [10/Oct/1995:13:56:40 -0700] "GET /maps/goleta.gif HTTP/1.0" 200 1500000
"#;

    #[test]
    fn parses_well_formed_lines() {
        let rec = parse_clf_line(
            r#"wile.cs.ucsb.edu - - [10/Oct/1995:13:55:36 -0700] "GET /maps/goleta.gif HTTP/1.0" 200 1500000"#,
        )
        .unwrap();
        assert_eq!(rec.host, "wile.cs.ucsb.edu");
        assert_eq!(rec.path, "/maps/goleta.gif");
        assert_eq!(rec.method, "GET");
        assert_eq!(rec.status, 200);
        assert_eq!(rec.bytes, 1_500_000);
        assert_eq!(rec.time_of_day, 13 * 3600 + 55 * 60 + 36);
    }

    #[test]
    fn dash_bytes_parse_as_zero_and_bad_lines_skip() {
        let (records, skipped) = parse_clf(SAMPLE);
        assert_eq!(records.len(), 5);
        assert_eq!(skipped, 1);
        assert_eq!(records[2].bytes, 0);
        assert_eq!(records[2].status, 404);
    }

    #[test]
    fn rejects_garbage_timestamps() {
        assert!(parse_clf_line(r#"h - - [10/Oct/1995:99:00:00 -0700] "GET / HTTP/1.0" 200 1"#)
            .is_none());
        assert!(parse_clf_line(r#"h - - [no-time] "GET / HTTP/1.0" 200 1"#).is_none());
        assert!(parse_clf_line("").is_none());
        assert!(parse_clf_line("# comment").is_none());
    }

    #[test]
    fn trace_to_workload_replays_successful_gets() {
        let (records, _) = parse_clf(SAMPLE);
        let (files, arrivals) = trace_to_workload(&records, 4, Placement::RoundRobin);
        // GETs with 2xx: goleta.gif (twice) + index.html => 2 files, 3 arrivals.
        assert_eq!(files.len(), 2);
        assert_eq!(arrivals.len(), 3);
        // First arrival at t=0, last 64 seconds later.
        assert_eq!(arrivals[0].at, SimTime::ZERO);
        assert_eq!(arrivals[2].at, SimTime::from_secs(64));
        // The repeated path maps to one id with its max logged size.
        assert_eq!(files.meta(arrivals[0].file).size, 1_500_000);
        // 404s and POSTs are not replayed.
        assert!(arrivals.iter().all(|a| a.file.0 < 2));
    }

    #[test]
    fn empty_trace_is_empty_workload() {
        let (files, arrivals) = trace_to_workload(&[], 2, Placement::RoundRobin);
        assert!(files.is_empty());
        assert!(arrivals.is_empty());
    }
}
