//! File-size distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The size mixes the paper's experiments use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every file the same size (Tables 1, 2, 4: 1 KB or 1.5 MB).
    Fixed(u64),
    /// The §4.2 non-uniform test: "sizes varying from short, approximately
    /// 100 bytes, to relatively long, approximately 1.5MB", drawn uniformly
    /// between the bounds (mean ≈ 750 KB — big files dominate the load,
    /// which is what makes round-robin's blindness to size hurt).
    Uniform {
        /// Smallest file size, bytes.
        min: u64,
        /// Largest file size, bytes.
        max: u64,
    },
    /// Log-uniform between the bounds — a heavy-tailed mix where most
    /// files are small but bytes are dominated by large files, as 1990s
    /// web traces showed. Used by the digital-library example workload.
    LogUniform {
        /// Smallest file size, bytes.
        min: u64,
        /// Largest file size, bytes.
        max: u64,
    },
    /// An explicit weighted mix of sizes.
    Mix(Vec<(u64, f64)>),
}

impl SizeDist {
    /// The paper's 1 KB small-file workload.
    pub fn small() -> Self {
        SizeDist::Fixed(1 << 10)
    }

    /// The paper's 1.5 MB large-file workload (a scanned map image).
    pub fn large() -> Self {
        SizeDist::Fixed(1_500_000)
    }

    /// The §4.2 non-uniform workload.
    pub fn nonuniform() -> Self {
        SizeDist::Uniform { min: 100, max: 1_500_000 }
    }

    /// A heavy-tailed corpus for digital-library style workloads.
    pub fn heavy_tailed() -> Self {
        SizeDist::LogUniform { min: 100, max: 1_500_000 }
    }

    /// Draw a size for file `id` using `rng`. Deterministic per (seeded
    /// rng sequence, call order).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match self {
            SizeDist::Fixed(s) => *s,
            SizeDist::Uniform { min, max } => {
                assert!(max >= min, "bad uniform bounds");
                rng.gen_range(*min..=*max)
            }
            SizeDist::LogUniform { min, max } => {
                assert!(*min >= 1 && max >= min, "bad log-uniform bounds");
                let (lo, hi) = ((*min as f64).ln(), (*max as f64).ln());
                let x: f64 = rng.gen_range(lo..=hi);
                (x.exp().round() as u64).clamp(*min, *max)
            }
            SizeDist::Mix(entries) => {
                assert!(!entries.is_empty(), "empty mix");
                let total: f64 = entries.iter().map(|(_, w)| w).sum();
                let mut pick = rng.gen_range(0.0..total);
                for (size, w) in entries {
                    if pick < *w {
                        return *size;
                    }
                    pick -= w;
                }
                entries.last().unwrap().0
            }
        }
    }

    /// Expected (mean) size of a draw, for analytic comparisons.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDist::Fixed(s) => *s as f64,
            SizeDist::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
            SizeDist::LogUniform { min, max } => {
                // E[X] for log-uniform on [a,b]: (b-a)/ln(b/a).
                let (a, b) = (*min as f64, *max as f64);
                if a == b {
                    a
                } else {
                    (b - a) / (b / a).ln()
                }
            }
            SizeDist::Mix(entries) => {
                let total: f64 = entries.iter().map(|(_, w)| w).sum();
                entries.iter().map(|(s, w)| *s as f64 * w).sum::<f64>() / total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = SizeDist::large();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1_500_000);
        }
        assert_eq!(d.mean(), 1_500_000.0);
    }

    #[test]
    fn uniform_mean_is_midpoint() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = SizeDist::nonuniform();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        assert!((emp - d.mean()).abs() / d.mean() < 0.02, "empirical {emp:.0} vs {:.0}", d.mean());
        assert!((d.mean() - 750_050.0).abs() < 1.0);
    }

    #[test]
    fn log_uniform_respects_bounds_and_spreads() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = SizeDist::heavy_tailed();
        let mut below_10k = 0;
        let mut above_100k = 0;
        for _ in 0..2000 {
            let s = d.sample(&mut rng);
            assert!((100..=1_500_000).contains(&s), "out of bounds: {s}");
            if s < 10_000 {
                below_10k += 1;
            }
            if s > 100_000 {
                above_100k += 1;
            }
        }
        // Log-uniform: ~48% below 10k, ~28% above 100k.
        assert!(below_10k > 600, "too few small files: {below_10k}");
        assert!(above_100k > 300, "too few large files: {above_100k}");
    }

    #[test]
    fn log_uniform_mean_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = SizeDist::heavy_tailed();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let expect = d.mean();
        assert!(
            (emp - expect).abs() / expect < 0.03,
            "empirical {emp:.0} vs closed-form {expect:.0}"
        );
    }

    #[test]
    fn mix_draws_each_component() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::Mix(vec![(100, 0.5), (1000, 0.5)]);
        let mut seen100 = false;
        let mut seen1000 = false;
        for _ in 0..200 {
            match d.sample(&mut rng) {
                100 => seen100 = true,
                1000 => seen1000 = true,
                other => panic!("unexpected size {other}"),
            }
        }
        assert!(seen100 && seen1000);
        assert_eq!(d.mean(), 550.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = SizeDist::nonuniform();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
