//! Client populations: where the requests come from.

use serde::{Deserialize, Serialize};

/// Network characteristics of the requesting clients. The paper tests two:
/// clients "primarily situated within UCSB" (high-bandwidth campus network)
/// and clients at Rutgers ("the East coast of the US ... poor bandwidth and
/// long latency over the connection from the east coast to the west coast").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClientPopulation {
    /// Label for reports.
    pub name: &'static str,
    /// One-way client↔server latency, seconds.
    pub latency: f64,
    /// Per-client achievable bandwidth to the server, bytes/second.
    pub bandwidth: f64,
    /// Client-side request timeout, seconds; a request still unanswered at
    /// this point counts as dropped ("Single server test timed out after no
    /// responses were received", Table 2).
    pub timeout: f64,
}

impl ClientPopulation {
    /// UCSB-local clients: sub-ms latency, campus-Ethernet bandwidth.
    /// 3 MB/s per client keeps a 1.5 MB transfer at ~0.5 s, the paper's
    /// Table 5 "Network Costs" row.
    pub fn ucsb_local() -> Self {
        ClientPopulation { name: "ucsb", latency: 0.5e-3, bandwidth: 3.0e6, timeout: 60.0 }
    }

    /// Rutgers east-coast clients: ~45 ms one-way cross-country latency and
    /// ~150 KB/s of mid-90s Internet path bandwidth.
    pub fn east_coast() -> Self {
        ClientPopulation { name: "rutgers", latency: 45e-3, bandwidth: 150e3, timeout: 120.0 }
    }

    /// Time for this client to pull `size` bytes once the server starts
    /// sending, ignoring server-side contention (used for estimates only;
    /// the simulator models the server side with shared resources).
    pub fn transfer_secs(&self, size: u64) -> f64 {
        size as f64 / self.bandwidth
    }

    /// One full round trip.
    pub fn rtt(&self) -> f64 {
        2.0 * self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_clients_match_table5_network_cost() {
        let c = ClientPopulation::ucsb_local();
        // Table 5: ~0.5 s network cost for a 1.5 MB file.
        let t = c.transfer_secs(1_500_000);
        assert!((t - 0.5).abs() < 0.01, "got {t}");
    }

    #[test]
    fn east_coast_is_slower_and_farther() {
        let local = ClientPopulation::ucsb_local();
        let east = ClientPopulation::east_coast();
        assert!(east.latency > 10.0 * local.latency);
        assert!(east.bandwidth < local.bandwidth / 2.0);
        assert!(east.rtt() > 0.08);
    }
}
