//! # sweb-workload — workload synthesis for the SWEB experiments
//!
//! The paper drives its server with bursts of near-simultaneous requests
//! ("simulating the action of a graphical browser such as Netscape where a
//! number of simultaneous connections are made"), at a constant number of
//! requests launched each second for a fixed duration (30 s bursts, 120 s
//! sustained). This crate generates those arrival schedules plus the file
//! populations and client populations the experiments need:
//!
//! * [`SizeDist`] — fixed sizes (1 KB / 1.5 MB), the §4.2 non-uniform mix
//!   (100 B – 1.5 MB), and custom mixes;
//! * [`FilePopulation`] — builds a [`sweb_cluster::FileMap`] with a given
//!   placement;
//! * [`ArrivalSchedule`] — per-second constant-rate bursts or Poisson
//!   arrivals, each request drawn from a file-popularity distribution
//!   (uniform or single-hot-file for the skewed test);
//! * [`ClientPopulation`] — latency/bandwidth of the requesting clients
//!   (UCSB-local vs Rutgers east-coast).

#![warn(missing_docs)]

mod arrivals;
mod clf;
mod clients;
mod population;
mod sizes;

pub use arrivals::{page_view_arrivals, Arrival, ArrivalSchedule, Popularity};
pub use clf::{parse_clf, parse_clf_line, trace_to_workload, ClfRecord};
pub use clients::ClientPopulation;
pub use population::FilePopulation;
pub use sizes::SizeDist;
