//! Arrival schedules: when requests hit the server and which file they ask
//! for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sweb_cluster::{FileId, FileMap};
use sweb_des::SimTime;

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// When the client initiates the request.
    pub at: SimTime,
    /// Which document it asks for.
    pub file: FileId,
}

/// Which documents clients ask for.
#[derive(Debug, Clone, Copy)]
pub enum Popularity {
    /// Each request picks a document uniformly at random.
    Uniform,
    /// Every request hits the same document — the §4.2 skewed test
    /// ("each client accessed the same file located on a single server").
    SingleFile(FileId),
    /// Zipf-like popularity with the given exponent (0 = uniform); models
    /// the hot-document skew real 1990s traces showed.
    Zipf(f64),
}

/// Generates the paper's arrival patterns.
///
/// ```
/// use sweb_workload::{ArrivalSchedule, FilePopulation};
///
/// let corpus = FilePopulation::uniform(10, 1024).build(4);
/// let arrivals = ArrivalSchedule::burst_30s(16).generate(&corpus);
/// assert_eq!(arrivals.len(), 16 * 30);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    /// Requests launched per second.
    pub rps: u32,
    /// Test duration (30 s bursts, 120 s sustained).
    pub duration: SimTime,
    /// Document popularity.
    pub popularity: Popularity,
    /// RNG seed.
    pub seed: u64,
    /// If true, each second's requests land as one near-simultaneous burst
    /// at the top of the second (the paper's constant-per-second launcher,
    /// jittered across 50 ms like a browser opening parallel connections).
    /// If false, arrivals are uniformly spread within each second.
    pub bursty: bool,
}

impl ArrivalSchedule {
    /// The paper's standard 30-second burst test.
    pub fn burst_30s(rps: u32) -> Self {
        ArrivalSchedule {
            rps,
            duration: SimTime::from_secs(30),
            popularity: Popularity::Uniform,
            seed: 0xa11ce,
            bursty: true,
        }
    }

    /// The paper's 120-second sustained test.
    pub fn sustained_120s(rps: u32) -> Self {
        ArrivalSchedule { duration: SimTime::from_secs(120), ..ArrivalSchedule::burst_30s(rps) }
    }

    /// Total requests this schedule will offer.
    pub fn total_requests(&self) -> u64 {
        self.rps as u64 * self.duration.as_micros().div_ceil(1_000_000)
    }

    /// Materialize arrivals against a document corpus.
    pub fn generate(&self, files: &FileMap) -> Vec<Arrival> {
        assert!(!files.is_empty(), "empty corpus");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let seconds = self.duration.as_micros().div_ceil(1_000_000);
        let mut out = Vec::with_capacity((self.rps as u64 * seconds) as usize);
        let zipf_weights = self.zipf_weights(files.len());
        for sec in 0..seconds {
            for _ in 0..self.rps {
                let offset_us: u64 = if self.bursty {
                    rng.gen_range(0..50_000)
                } else {
                    rng.gen_range(0..1_000_000)
                };
                let at = SimTime::from_micros(sec * 1_000_000 + offset_us);
                let file = self.pick_file(files, &zipf_weights, &mut rng);
                out.push(Arrival { at, file });
            }
        }
        out.sort_by_key(|a| a.at);
        out
    }

    fn zipf_weights(&self, n: usize) -> Vec<f64> {
        match self.popularity {
            Popularity::Zipf(s) => {
                let mut w: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
                let total: f64 = w.iter().sum();
                // Cumulative for binary-search sampling.
                let mut acc = 0.0;
                for x in w.iter_mut() {
                    acc += *x / total;
                    *x = acc;
                }
                w
            }
            _ => Vec::new(),
        }
    }

    fn pick_file(&self, files: &FileMap, zipf_cum: &[f64], rng: &mut StdRng) -> FileId {
        match self.popularity {
            Popularity::Uniform => FileId(rng.gen_range(0..files.len() as u64)),
            Popularity::SingleFile(f) => f,
            Popularity::Zipf(_) => {
                let x: f64 = rng.gen_range(0.0..1.0);
                let idx = zipf_cum.partition_point(|&c| c < x);
                FileId(idx.min(files.len() - 1) as u64)
            }
        }
    }
}

/// Page-view arrivals — the paper's burst motivation made literal:
/// "simulating the action of a graphical browser such as Netscape where a
/// number of simultaneous connections are made, one for each graphics
/// image on the page."
///
/// Each page view issues `1 + images_per_page` requests at (nearly) the
/// same instant: one for the page itself and one per embedded image, all
/// drawn uniformly from the corpus. `pages_per_sec` page views start each
/// second, spread across the second.
pub fn page_view_arrivals(
    pages_per_sec: u32,
    images_per_page: u32,
    duration: SimTime,
    files: &FileMap,
    seed: u64,
) -> Vec<Arrival> {
    assert!(!files.is_empty(), "empty corpus");
    let mut rng = StdRng::seed_from_u64(seed);
    let seconds = duration.as_micros().div_ceil(1_000_000);
    let per_page = 1 + images_per_page as u64;
    let mut out = Vec::with_capacity((pages_per_sec as u64 * seconds * per_page) as usize);
    for sec in 0..seconds {
        for _ in 0..pages_per_sec {
            let page_start = sec * 1_000_000 + rng.gen_range(0u64..1_000_000);
            for k in 0..per_page {
                // The browser opens its parallel connections within a few
                // milliseconds of parsing the page.
                let jitter = if k == 0 { 0 } else { rng.gen_range(0..5_000) };
                out.push(Arrival {
                    at: SimTime::from_micros(page_start + jitter),
                    file: FileId(rng.gen_range(0..files.len() as u64)),
                });
            }
        }
    }
    out.sort_by_key(|a| a.at);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::FilePopulation;

    fn corpus(n: usize) -> FileMap {
        FilePopulation::uniform(n, 1024).build(4)
    }

    #[test]
    fn generates_rps_times_duration_requests() {
        let s = ArrivalSchedule::burst_30s(16);
        let arrivals = s.generate(&corpus(10));
        assert_eq!(arrivals.len(), 16 * 30);
        assert_eq!(s.total_requests(), 480);
        // All inside the duration window.
        assert!(arrivals.iter().all(|a| a.at < SimTime::from_secs(30)));
        // Sorted by time.
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn bursty_arrivals_cluster_at_second_starts() {
        let s = ArrivalSchedule::burst_30s(10);
        let arrivals = s.generate(&corpus(10));
        for a in &arrivals {
            let within_sec = a.at.as_micros() % 1_000_000;
            assert!(within_sec < 50_000, "burst arrival at +{within_sec}µs");
        }
    }

    #[test]
    fn smooth_arrivals_spread_out() {
        let s = ArrivalSchedule { bursty: false, ..ArrivalSchedule::burst_30s(10) };
        let arrivals = s.generate(&corpus(10));
        let late = arrivals.iter().filter(|a| a.at.as_micros() % 1_000_000 > 500_000).count();
        assert!(late > arrivals.len() / 4, "smooth mode should fill the whole second");
    }

    #[test]
    fn single_file_popularity_hits_one_file() {
        let s = ArrivalSchedule {
            popularity: Popularity::SingleFile(FileId(3)),
            ..ArrivalSchedule::burst_30s(8)
        };
        let arrivals = s.generate(&corpus(10));
        assert!(arrivals.iter().all(|a| a.file == FileId(3)));
    }

    #[test]
    fn uniform_popularity_covers_corpus() {
        let s = ArrivalSchedule::burst_30s(20);
        let arrivals = s.generate(&corpus(10));
        let distinct: std::collections::HashSet<_> = arrivals.iter().map(|a| a.file).collect();
        assert_eq!(distinct.len(), 10, "600 draws over 10 files must cover all");
    }

    #[test]
    fn zipf_skews_toward_low_ids() {
        let s = ArrivalSchedule {
            popularity: Popularity::Zipf(1.2),
            ..ArrivalSchedule::burst_30s(64)
        };
        let arrivals = s.generate(&corpus(100));
        let hot = arrivals.iter().filter(|a| a.file.0 < 10).count();
        assert!(
            hot as f64 / arrivals.len() as f64 > 0.5,
            "zipf(1.2): top-10 of 100 files should get >50% of requests, got {}",
            hot as f64 / arrivals.len() as f64
        );
    }

    #[test]
    fn page_views_issue_simultaneous_batches() {
        let corpus = corpus(20);
        let arrivals =
            page_view_arrivals(2, 4, SimTime::from_secs(10), &corpus, 7);
        // 2 pages/s * 10 s * (1 page + 4 images) = 100 requests.
        assert_eq!(arrivals.len(), 100);
        assert!(arrivals.iter().all(|a| a.at < SimTime::from_secs(11)));
        // Requests cluster: sort, then check that most arrivals have a
        // neighbour within 5 ms (its page-mates).
        let clustered = arrivals
            .windows(2)
            .filter(|w| w[1].at.saturating_sub(w[0].at) <= SimTime::from_millis(5))
            .count();
        assert!(clustered >= 70, "page-mates must cluster in time: {clustered}/99");
        // Deterministic per seed.
        let again = page_view_arrivals(2, 4, SimTime::from_secs(10), &corpus, 7);
        assert_eq!(arrivals.len(), again.len());
        assert!(arrivals.iter().zip(&again).all(|(a, b)| a.at == b.at && a.file == b.file));
    }

    #[test]
    fn deterministic_per_seed() {
        let s = ArrivalSchedule::burst_30s(8);
        let a = s.generate(&corpus(10));
        let b = s.generate(&corpus(10));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.file, y.file);
        }
    }
}
