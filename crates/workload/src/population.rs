//! File population builder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sweb_cluster::{FileMap, Placement};

use crate::sizes::SizeDist;

/// Describes the document corpus an experiment serves.
#[derive(Debug, Clone)]
pub struct FilePopulation {
    /// Number of distinct documents.
    pub count: usize,
    /// Size distribution documents are drawn from.
    pub sizes: SizeDist,
    /// Placement of documents on node-local disks.
    pub placement: Placement,
    /// RNG seed for size draws.
    pub seed: u64,
}

impl FilePopulation {
    /// A population of `count` files of identical `size`, round-robin
    /// placed — the layout behind Tables 1, 2 and 4.
    pub fn uniform(count: usize, size: u64) -> Self {
        FilePopulation {
            count,
            sizes: SizeDist::Fixed(size),
            placement: Placement::RoundRobin,
            seed: 0x5eb,
        }
    }

    /// The §4.2 non-uniform corpus (100 B – 1.5 MB, round-robin placed).
    pub fn nonuniform(count: usize) -> Self {
        FilePopulation {
            count,
            sizes: SizeDist::nonuniform(),
            placement: Placement::RoundRobin,
            seed: 0x5eb,
        }
    }

    /// Materialize the corpus for a `p`-node cluster.
    pub fn build(&self, p: usize) -> FileMap {
        let mut rng = StdRng::seed_from_u64(self.seed);
        FileMap::build(self.count, p, self.placement, |_| self.sizes.sample(&mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweb_cluster::NodeId;

    #[test]
    fn uniform_population_builds() {
        let m = FilePopulation::uniform(30, 1024).build(6);
        assert_eq!(m.len(), 30);
        assert!(m.iter().all(|f| f.size == 1024));
        for n in 0..6 {
            assert_eq!(m.on_node(NodeId(n)).count(), 5);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let p = FilePopulation::nonuniform(50);
        let a = p.build(4);
        let b = p.build(4);
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.size, fb.size);
            assert_eq!(fa.home, fb.home);
        }
    }

    #[test]
    fn seeds_change_sizes() {
        let mut p1 = FilePopulation::nonuniform(50);
        let mut p2 = FilePopulation::nonuniform(50);
        p1.seed = 1;
        p2.seed = 2;
        let a = p1.build(4);
        let b = p2.build(4);
        assert!(a.iter().zip(b.iter()).any(|(x, y)| x.size != y.size));
    }
}
