//! The peer transfer channel: node-to-node movement of document bytes.
//!
//! SWEB's only remedy for a misrouted request is a 302 back to the
//! client (§3.1), which charges every cost-model miss a full client
//! round trip. This crate gives nodes a second option: a persistent TCP
//! channel between cluster members carrying a small length-prefixed,
//! versioned protocol with two verbs —
//!
//! * `FETCH` — pull one document by `FileId`-and-path from a peer's
//!   cache/disk (the losing side of a placement decision pulls the bytes
//!   instead of bouncing the client), and
//! * `PUSH` — proactively replicate a hot document into a peer's cache
//!   ahead of demand (the digest-driven replicator).
//!
//! The channel is deliberately dumb: no multiplexing, one outstanding
//! request per pooled connection, explicit deadlines on every phase.
//! Robustness rules mirror the loadd datagram codec: unknown versions
//! are a skew error (counted, never fatal to the node), truncated or
//! garbled frames close the connection, and every decode failure is
//! typed so the server can count it like `loadd_decode_errors`.
//!
//! (`FileId`s are u64 file keys — the same FNV-1a namespace the striped
//! file cache and the loadd Bloom digests use.)

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Frame magic: distinguishes the peer channel from a stray HTTP client
/// ("SP" = SWEB peer; loadd datagrams use "SW").
pub const MAGIC: [u8; 2] = *b"SP";

/// Current protocol version. A receiver drops the connection (with a
/// typed [`FrameError::VersionSkew`]) on any other value rather than
/// guessing at an unknown layout.
pub const VERSION: u8 = 1;

/// Fixed header: magic (2) + version (1) + opcode (1) + payload length
/// (4, little-endian).
pub const HEADER_LEN: usize = 8;

/// Upper bound on one frame's payload. Documents bigger than this are
/// never peer-transferred (they would not fit a cache segment anyway);
/// a larger declared length is a garbled or hostile frame.
pub const MAX_PAYLOAD: u32 = 8 << 20;

const OP_FETCH_REQ: u8 = 1;
const OP_FETCH_OK: u8 = 2;
const OP_FETCH_ERR: u8 = 3;
const OP_PUSH: u8 = 4;
const OP_PUSH_OK: u8 = 5;

/// `FETCH` error codes carried by [`Frame::FetchErr`].
pub mod fetch_err {
    /// The peer could not read the document (missing, unreadable).
    pub const NOT_FOUND: u8 = 1;
    /// The document exceeds [`super::MAX_PAYLOAD`].
    pub const TOO_LARGE: u8 = 2;
    /// The peer is draining or shutting down.
    pub const UNAVAILABLE: u8 = 3;
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Pull a document. `trace` is the originating request's
    /// `X-SWEB-Trace` id so the serving peer's access log carries the
    /// same id as the origin's (cross-node request tracing).
    FetchReq {
        /// FNV-1a key of `path` (integrity cross-check).
        file: u64,
        /// Originating request's trace id (may be empty).
        trace: String,
        /// Docroot-relative path of the document.
        path: String,
    },
    /// Successful fetch: document body plus the metadata the striped
    /// cache needs to insert it (exact nanosecond mtime, so a later
    /// local `stat` revalidation hits).
    FetchOk {
        /// Echo of the requested file key.
        file: u64,
        /// File mtime, nanoseconds since the Unix epoch.
        mtime_ns: u64,
        /// Document bytes.
        body: Vec<u8>,
    },
    /// Fetch failed on the serving side (see [`fetch_err`]).
    FetchErr {
        /// One of the [`fetch_err`] codes.
        code: u8,
    },
    /// Replicate a document into the receiver's cache.
    Push {
        /// FNV-1a key of `path`.
        file: u64,
        /// File mtime, nanoseconds since the Unix epoch.
        mtime_ns: u64,
        /// Docroot-relative path of the document.
        path: String,
        /// Document bytes.
        body: Vec<u8>,
    },
    /// Push acknowledged. `accepted` is false when the receiver declined
    /// (body larger than a cache segment, key mismatch, draining).
    PushOk {
        /// Whether the document was inserted into the receiver's cache.
        accepted: bool,
    },
}

/// Why a byte sequence failed to decode as a [`Frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet (or the stream died mid-frame).
    Truncated,
    /// First two bytes are not [`MAGIC`] — not a peer-channel speaker.
    BadMagic,
    /// The version byte names a protocol we do not speak.
    VersionSkew(u8),
    /// Unknown opcode within a known version — a garbled frame.
    BadOpcode(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Header was well-formed but the payload did not parse.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("truncated frame"),
            FrameError::BadMagic => f.write_str("bad magic"),
            FrameError::VersionSkew(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadOpcode(op) => write!(f, "unknown opcode {op}"),
            FrameError::Oversized(n) => write!(f, "payload length {n} over limit"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Channel-level failure: protocol trouble or the socket underneath.
#[derive(Debug)]
pub enum PeerError {
    /// Socket-level failure (includes timeouts and mid-frame EOF).
    Io(io::Error),
    /// The peer sent bytes that do not decode.
    Protocol(FrameError),
    /// The peer answered `FETCH` with an error code (see [`fetch_err`]).
    Refused(u8),
    /// The peer closed the connection cleanly between frames.
    Closed,
}

impl From<io::Error> for PeerError {
    fn from(e: io::Error) -> Self {
        PeerError::Io(e)
    }
}

impl From<FrameError> for PeerError {
    fn from(e: FrameError) -> Self {
        PeerError::Protocol(e)
    }
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Io(e) => write!(f, "peer io: {e}"),
            PeerError::Protocol(e) => write!(f, "peer protocol: {e}"),
            PeerError::Refused(code) => write!(f, "peer refused fetch (code {code})"),
            PeerError::Closed => f.write_str("peer closed the connection"),
        }
    }
}

impl std::error::Error for PeerError {}

/// `SystemTime` → nanoseconds since the Unix epoch (saturating; the
/// epoch itself and anything before it encode as 0).
pub fn mtime_to_ns(t: SystemTime) -> u64 {
    t.duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

/// Nanoseconds since the Unix epoch → `SystemTime` (inverse of
/// [`mtime_to_ns`]).
pub fn ns_to_mtime(ns: u64) -> SystemTime {
    UNIX_EPOCH + Duration::from_nanos(ns)
}

fn opcode_of(frame: &Frame) -> u8 {
    match frame {
        Frame::FetchReq { .. } => OP_FETCH_REQ,
        Frame::FetchOk { .. } => OP_FETCH_OK,
        Frame::FetchErr { .. } => OP_FETCH_ERR,
        Frame::Push { .. } => OP_PUSH,
        Frame::PushOk { .. } => OP_PUSH_OK,
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// Serialize one frame (header + payload).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::FetchReq { file, trace, path } => {
            payload.extend_from_slice(&file.to_le_bytes());
            put_str(&mut payload, trace);
            put_str(&mut payload, path);
        }
        Frame::FetchOk { file, mtime_ns, body } => {
            payload.extend_from_slice(&file.to_le_bytes());
            payload.extend_from_slice(&mtime_ns.to_le_bytes());
            payload.extend_from_slice(body);
        }
        Frame::FetchErr { code } => payload.push(*code),
        Frame::Push { file, mtime_ns, path, body } => {
            payload.extend_from_slice(&file.to_le_bytes());
            payload.extend_from_slice(&mtime_ns.to_le_bytes());
            put_str(&mut payload, path);
            payload.extend_from_slice(body);
        }
        Frame::PushOk { accepted } => payload.push(u8::from(*accepted)),
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(opcode_of(frame));
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Malformed("field past payload end"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")) as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| FrameError::Malformed("non-utf8 string"))
    }

    fn rest(&mut self) -> Vec<u8> {
        let s = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        s
    }
}

fn decode_payload(opcode: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let frame = match opcode {
        OP_FETCH_REQ => {
            Frame::FetchReq { file: c.u64()?, trace: c.str()?, path: c.str()? }
        }
        OP_FETCH_OK => Frame::FetchOk { file: c.u64()?, mtime_ns: c.u64()?, body: c.rest() },
        OP_FETCH_ERR => Frame::FetchErr { code: c.u8()? },
        OP_PUSH => Frame::Push {
            file: c.u64()?,
            mtime_ns: c.u64()?,
            path: c.str()?,
            body: c.rest(),
        },
        OP_PUSH_OK => Frame::PushOk { accepted: c.u8()? != 0 },
        other => return Err(FrameError::BadOpcode(other)),
    };
    if c.pos != payload.len() {
        return Err(FrameError::Malformed("trailing bytes in payload"));
    }
    Ok(frame)
}

/// Decode one frame from the front of `buf`. Returns the frame and how
/// many bytes it consumed; [`FrameError::Truncated`] means "not enough
/// bytes yet" (callers reading a stream can wait for more).
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    if buf[..2] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf[2] != VERSION {
        return Err(FrameError::VersionSkew(buf[2]));
    }
    let opcode = buf[3];
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let frame = decode_payload(opcode, &buf[HEADER_LEN..total])?;
    Ok((frame, total))
}

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8]) -> Result<(), PeerError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // The peer died mid-frame: a truncated frame, not plain io.
            PeerError::Protocol(FrameError::Truncated)
        } else {
            PeerError::Io(e)
        }
    })
}

/// Read exactly one frame off a stream. A read timeout configured on the
/// stream bounds every phase: a peer that dies mid-frame produces
/// [`FrameError::Truncated`] (EOF) or an [`io::Error`] timeout — never a
/// hang. A clean EOF *before any header byte* is [`PeerError::Closed`]
/// (the peer hung up between frames — e.g. a stale pooled connection).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, PeerError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(PeerError::Closed),
            Ok(0) => return Err(FrameError::Truncated.into()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PeerError::Io(e)),
        }
    }
    read_frame_after_header(r, &header)
}

/// Like [`read_frame`] but idle-tolerant: a timeout or `WouldBlock`
/// *before the first header byte* returns `Ok(None)` (nothing arrived —
/// check shutdown flags and poll again); a clean EOF before the first
/// byte returns [`PeerError::Closed`]. Once a frame has started, every
/// failure is an error — a peer must never stall mid-frame.
pub fn read_frame_or_idle(r: &mut impl Read) -> Result<Option<Frame>, PeerError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(PeerError::Closed),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PeerError::Io(e)),
        }
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    read_exact_or(r, &mut header[1..])?;
    read_frame_after_header(r, &header).map(Some)
}

fn read_frame_after_header(r: &mut impl Read, header: &[u8]) -> Result<Frame, PeerError> {
    if header[..2] != MAGIC {
        return Err(FrameError::BadMagic.into());
    }
    if header[2] != VERSION {
        return Err(FrameError::VersionSkew(header[2]).into());
    }
    let opcode = header[3];
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload)?;
    Ok(decode_payload(opcode, &payload)?)
}

/// A successfully fetched document.
#[derive(Debug, Clone)]
pub struct FetchedDoc {
    /// Document bytes.
    pub body: Vec<u8>,
    /// File mtime (exact, nanosecond granularity).
    pub mtime: SystemTime,
}

/// Pooled connections to every peer, keyed by node index.
///
/// One slot per peer holds at most [`PeerPool::KEEP`] idle connections.
/// A request takes a pooled connection if one exists (it may be stale —
/// the peer restarted, an idle timeout fired), and on any socket error
/// retries exactly once on a freshly dialed connection before giving
/// up — unless a retry gate (see [`PeerPool::set_retry_gate`]) refuses
/// the retry. All reads and writes are bounded by the caller's deadline;
/// the pool never blocks longer than `deadline` per attempt.
pub struct PeerPool {
    addrs: Vec<SocketAddr>,
    slots: Vec<Mutex<Vec<TcpStream>>>,
    /// Called with the peer index before the stale-connection retry;
    /// `false` vetoes it (e.g. a drained retry budget). `None` = always
    /// retry, the pre-gate behavior.
    retry_gate: Mutex<Option<Box<dyn Fn(usize) -> bool + Send + Sync>>>,
}

impl std::fmt::Debug for PeerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerPool").field("addrs", &self.addrs).finish_non_exhaustive()
    }
}

impl PeerPool {
    /// Idle connections kept per peer.
    pub const KEEP: usize = 2;

    /// A pool over the cluster's peer-channel addresses (index = node id).
    pub fn new(addrs: Vec<SocketAddr>) -> PeerPool {
        let slots = addrs.iter().map(|_| Mutex::new(Vec::new())).collect();
        PeerPool { addrs, slots, retry_gate: Mutex::new(None) }
    }

    /// Install the retry gate: consulted (with the peer index) before the
    /// pool's single stale-connection retry, so callers can budget
    /// retries instead of granting one unconditionally.
    pub fn set_retry_gate(&self, gate: impl Fn(usize) -> bool + Send + Sync + 'static) {
        *self.retry_gate.lock().expect("gate lock") = Some(Box::new(gate));
    }

    fn retry_allowed(&self, peer: usize) -> bool {
        self.retry_gate
            .lock()
            .expect("gate lock")
            .as_ref()
            .is_none_or(|gate| gate(peer))
    }

    /// Number of peers the pool knows about.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    fn checkout(&self, peer: usize, deadline: Duration) -> Result<TcpStream, PeerError> {
        if let Some(stream) = self.slots[peer].lock().expect("pool lock").pop() {
            stream.set_read_timeout(Some(deadline))?;
            stream.set_write_timeout(Some(deadline))?;
            return Ok(stream);
        }
        self.dial(peer, deadline)
    }

    fn dial(&self, peer: usize, deadline: Duration) -> Result<TcpStream, PeerError> {
        let stream = TcpStream::connect_timeout(&self.addrs[peer], deadline)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
        Ok(stream)
    }

    fn checkin(&self, peer: usize, stream: TcpStream) {
        let mut slot = self.slots[peer].lock().expect("pool lock");
        if slot.len() < Self::KEEP {
            slot.push(stream);
        }
    }

    /// One request/response exchange on a connection.
    fn exchange(stream: &mut TcpStream, req: &Frame) -> Result<Frame, PeerError> {
        write_frame(stream, req)?;
        read_frame(stream)
    }

    /// Run `req` against `peer`, retrying once on a fresh connection if
    /// a (possibly stale) pooled connection fails at the socket level.
    /// Protocol errors and explicit refusals are never retried — the
    /// peer is alive and has answered.
    fn request(&self, peer: usize, req: &Frame, deadline: Duration) -> Result<Frame, PeerError> {
        let deadline = deadline.max(Duration::from_millis(1));
        let pooled = !self.slots[peer].lock().expect("pool lock").is_empty();
        let mut stream = self.checkout(peer, deadline)?;
        match Self::exchange(&mut stream, req) {
            Ok(reply) => {
                self.checkin(peer, stream);
                Ok(reply)
            }
            Err(PeerError::Io(_)) | Err(PeerError::Closed) if pooled && self.retry_allowed(peer) => {
                // The idle connection was dead; one retry, freshly dialed.
                let mut fresh = self.dial(peer, deadline)?;
                let reply = Self::exchange(&mut fresh, req)?;
                self.checkin(peer, fresh);
                Ok(reply)
            }
            Err(e) => Err(e),
        }
    }

    /// `FETCH` one document from `peer`. `deadline` bounds the whole
    /// attempt (connect + write + read), per phase.
    pub fn fetch(
        &self,
        peer: usize,
        file: u64,
        path: &str,
        trace: &str,
        deadline: Duration,
    ) -> Result<FetchedDoc, PeerError> {
        let req = Frame::FetchReq { file, trace: trace.to_string(), path: path.to_string() };
        match self.request(peer, &req, deadline)? {
            Frame::FetchOk { file: got, mtime_ns, body } => {
                if got != file {
                    return Err(FrameError::Malformed("fetch reply names a different file").into());
                }
                Ok(FetchedDoc { body, mtime: ns_to_mtime(mtime_ns) })
            }
            Frame::FetchErr { code } => Err(PeerError::Refused(code)),
            _ => Err(FrameError::Malformed("unexpected reply to FETCH").into()),
        }
    }

    /// `PUSH` a document into `peer`'s cache. Returns whether the peer
    /// accepted (inserted) it.
    pub fn push(
        &self,
        peer: usize,
        file: u64,
        path: &str,
        mtime: SystemTime,
        body: &[u8],
        deadline: Duration,
    ) -> Result<bool, PeerError> {
        let req = Frame::Push {
            file,
            mtime_ns: mtime_to_ns(mtime),
            path: path.to_string(),
            body: body.to_vec(),
        };
        match self.request(peer, &req, deadline)? {
            Frame::PushOk { accepted } => Ok(accepted),
            _ => Err(FrameError::Malformed("unexpected reply to PUSH").into()),
        }
    }

    /// Drop every pooled connection (a peer was declared Dead, or the
    /// node is shutting down).
    pub fn disconnect(&self, peer: usize) {
        self.slots[peer].lock().expect("pool lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::FetchReq {
                file: 0xfeed_beef_dead_cafe,
                trace: "n0-5f3a-1".into(),
                path: "maps/goleta.gif".into(),
            },
            Frame::FetchOk { file: 7, mtime_ns: 1_234_567_890_123, body: b"abc".to_vec() },
            Frame::FetchErr { code: fetch_err::NOT_FOUND },
            Frame::Push {
                file: 42,
                mtime_ns: 99,
                path: "docs/doc3.txt".into(),
                body: vec![0u8; 1024],
            },
            Frame::PushOk { accepted: true },
            Frame::PushOk { accepted: false },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let wire = encode(&frame);
            let (back, used) = decode(&wire).expect("decode");
            assert_eq!(back, frame);
            assert_eq!(used, wire.len());
        }
    }

    #[test]
    fn every_truncation_is_reported_not_misparsed() {
        for frame in sample_frames() {
            let wire = encode(&frame);
            for cut in 0..wire.len() {
                assert_eq!(
                    decode(&wire[..cut]).unwrap_err(),
                    FrameError::Truncated,
                    "prefix of {cut} bytes"
                );
            }
        }
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let mut wire = encode(&Frame::PushOk { accepted: true });
        wire[2] = 9;
        assert_eq!(decode(&wire).unwrap_err(), FrameError::VersionSkew(9));
    }

    #[test]
    fn garbage_is_rejected_with_reasons() {
        assert_eq!(decode(b"GET / HTTP/1.0\r\n").unwrap_err(), FrameError::BadMagic);
        let mut wire = encode(&Frame::FetchErr { code: 1 });
        wire[3] = 0xAA;
        assert_eq!(decode(&wire).unwrap_err(), FrameError::BadOpcode(0xAA));
        let mut huge = encode(&Frame::PushOk { accepted: true });
        huge[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(decode(&huge).unwrap_err(), FrameError::Oversized(MAX_PAYLOAD + 1));
    }

    #[test]
    fn malformed_payloads_are_typed() {
        // A FetchReq whose path length points past the payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&0u16.to_le_bytes()); // empty trace
        payload.extend_from_slice(&500u16.to_le_bytes()); // path claims 500 bytes
        payload.extend_from_slice(b"short");
        let mut wire = vec![];
        wire.extend_from_slice(&MAGIC);
        wire.push(VERSION);
        wire.push(OP_FETCH_REQ);
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        assert!(matches!(decode(&wire).unwrap_err(), FrameError::Malformed(_)));
        // Trailing junk after a fixed-size payload.
        let mut trailing = encode(&Frame::FetchErr { code: 1 });
        let len = (2u32).to_le_bytes();
        trailing[4..8].copy_from_slice(&len);
        trailing.push(0xFF);
        assert!(matches!(decode(&trailing).unwrap_err(), FrameError::Malformed(_)));
    }

    #[test]
    fn mtime_round_trips_exactly() {
        let now = SystemTime::now();
        let ns = mtime_to_ns(now);
        assert_eq!(mtime_to_ns(ns_to_mtime(ns)), ns);
    }

    #[test]
    fn mid_stream_death_errors_within_the_deadline_never_hangs() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Read the request, then die after half a reply frame.
            let _ = read_frame(&mut conn);
            let reply = encode(&Frame::FetchOk {
                file: 1,
                mtime_ns: 0,
                body: vec![0u8; 4096],
            });
            conn.write_all(&reply[..reply.len() / 2]).unwrap();
            // Dropping the stream closes it mid-frame.
        });
        let pool = PeerPool::new(vec![addr]);
        let started = Instant::now();
        let err = pool.fetch(0, 1, "a.txt", "t", Duration::from_millis(500)).unwrap_err();
        assert!(matches!(err, PeerError::Protocol(FrameError::Truncated)), "{err}");
        assert!(started.elapsed() < Duration::from_secs(2), "must fail fast, not hang");
        server.join().unwrap();
    }

    #[test]
    fn pool_fetch_and_push_round_trip_against_a_live_speaker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Serve two sequential connections worth of frames.
            let (mut conn, _) = listener.accept().unwrap();
            loop {
                match read_frame(&mut conn) {
                    Ok(Frame::FetchReq { file, trace, path }) => {
                        assert_eq!(path, "docs/doc1.txt");
                        assert_eq!(trace, "n1-aa-3");
                        let reply =
                            Frame::FetchOk { file, mtime_ns: 777, body: b"hello".to_vec() };
                        write_frame(&mut conn, &reply).unwrap();
                    }
                    Ok(Frame::Push { file, body, .. }) => {
                        assert_eq!(file, 9);
                        assert_eq!(body.len(), 64);
                        write_frame(&mut conn, &Frame::PushOk { accepted: true }).unwrap();
                    }
                    _ => break,
                }
            }
        });
        let pool = PeerPool::new(vec![addr]);
        let deadline = Duration::from_secs(2);
        let doc = pool.fetch(0, 5, "docs/doc1.txt", "n1-aa-3", deadline).unwrap();
        assert_eq!(doc.body, b"hello");
        assert_eq!(mtime_to_ns(doc.mtime), 777);
        // Second exchange reuses the pooled connection.
        let accepted = pool.push(0, 9, "docs/doc9.txt", ns_to_mtime(1), &[7u8; 64], deadline);
        assert!(accepted.unwrap());
        drop(pool);
        server.join().unwrap();
    }

    #[test]
    fn stale_pooled_connection_is_retried_on_a_fresh_dial() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: accept and immediately drop (stale pool
            // entry). Second connection: answer properly.
            let (conn, _) = listener.accept().unwrap();
            drop(conn);
            let (mut conn, _) = listener.accept().unwrap();
            if let Ok(Frame::FetchReq { file, .. }) = read_frame(&mut conn) {
                let reply = Frame::FetchOk { file, mtime_ns: 1, body: b"ok".to_vec() };
                write_frame(&mut conn, &reply).unwrap();
            }
        });
        let pool = PeerPool::new(vec![addr]);
        // Seed the pool with a connection the server has already closed.
        let dead = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        pool.slots[0].lock().unwrap().push(dead);
        let doc = pool.fetch(0, 3, "x", "t", Duration::from_secs(2)).unwrap();
        assert_eq!(doc.body, b"ok");
        server.join().unwrap();
    }
}
