//! # sweb-chaos — deterministic fault injection for the live cluster
//!
//! The paper's availability story (§2.2–2.3) is that loadd marks silent
//! peers unavailable and the scheduler tolerates node join/leave. Proving
//! that requires deliberately breaking nodes, and doing it *replayably*:
//! a chaos test that fails must fail the same way on the next run.
//!
//! This crate supplies two pieces:
//!
//! * [`FaultPlan`] — a seeded, text-serializable description of every
//!   fault to inject during a run: loadd packet loss/delay, network
//!   partitions (per node-pair), node crashes and revivals at scripted
//!   times, accept pauses, slow-disk latency, and fd-exhaustion pressure.
//!   Plans round-trip through a line-based text format so a failing CI
//!   job can upload the exact plan for local replay.
//! * [`Injector`] — the runtime half: armed with the cluster's start
//!   instant, it answers point queries from the server hot paths
//!   ("should this loadd packet from node 2 to node 0 be delivered?",
//!   "is node 1's accept loop paused right now?") deterministically from
//!   the plan's seed. Random decisions (probabilistic packet loss) hash
//!   `(seed, from, to, per-pair sequence number)` through splitmix64, so
//!   the verdict stream is a pure function of the plan.
//!
//! The injector deliberately knows nothing about sockets or threads —
//! `sweb-server` threads the queries through its loadd loop, accept
//! loops, and file-fetch path. With no plan (the default), every query
//! short-circuits to "no fault" without touching an atomic.

#![warn(missing_docs)]

mod inject;
mod plan;

pub use inject::{FaultCounts, FaultCountsSnapshot, Injector, ScriptedOp, TxVerdict};
pub use plan::{Fault, FaultPlan, PlanParseError, Window};
