//! Fault plans: the serializable description of a chaos run.

use std::fmt;

/// A half-open time window `[start_ms, end_ms)` measured from cluster
/// start. `end_ms == 0` means "open-ended" (until the run finishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Window {
    /// First millisecond (inclusive) the fault is active.
    pub start_ms: u64,
    /// First millisecond the fault is no longer active; 0 = never ends.
    pub end_ms: u64,
}

impl Window {
    /// A window covering the whole run.
    pub const ALWAYS: Window = Window { start_ms: 0, end_ms: 0 };

    /// A window active from `start_ms` until `end_ms`.
    pub fn between(start_ms: u64, end_ms: u64) -> Window {
        Window { start_ms, end_ms }
    }

    /// Whether `now_ms` falls inside the window.
    pub fn contains(&self, now_ms: u64) -> bool {
        now_ms >= self.start_ms && (self.end_ms == 0 || now_ms < self.end_ms)
    }
}

/// One injectable fault. Node indices refer to cluster slots, matching
/// `NodeId` in the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop loadd packets from `from` to `to` with probability
    /// `rate_ppm` / 1_000_000, decided deterministically per packet.
    LoaddLoss {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Drop probability in parts per million (1_000_000 = drop all).
        rate_ppm: u32,
        /// When the fault is active.
        window: Window,
    },
    /// Delay loadd packets from `from` to `to` by `delay_ms`.
    LoaddDelay {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Added latency per packet, in milliseconds.
        delay_ms: u64,
        /// When the fault is active.
        window: Window,
    },
    /// Drop *all* loadd traffic between `a` and `b`, both directions:
    /// each keeps serving clients but the pair stop hearing each other.
    Partition {
        /// One side of the cut.
        a: u32,
        /// The other side.
        b: u32,
        /// When the fault is active.
        window: Window,
    },
    /// Hard-kill `node` at `at_ms`: the process equivalent of yanking
    /// power — no leaving packet, no drain.
    Crash {
        /// Victim node.
        node: u32,
        /// Milliseconds from cluster start.
        at_ms: u64,
    },
    /// Restart a previously crashed `node` at `at_ms` on its old address.
    Revive {
        /// Node to bring back.
        node: u32,
        /// Milliseconds from cluster start.
        at_ms: u64,
    },
    /// Stop `node` accepting connections (the listener stays bound, so
    /// clients see hangs-until-backlog, not refusals) for the window.
    Pause {
        /// Affected node.
        node: u32,
        /// When the fault is active.
        window: Window,
    },
    /// Add `extra_ms` of artificial latency to every file read on `node`.
    SlowDisk {
        /// Affected node.
        node: u32,
        /// Added latency per read, in milliseconds.
        extra_ms: u64,
        /// When the fault is active.
        window: Window,
    },
    /// Simulate fd exhaustion on `node`: accepted connections are
    /// immediately failed as if `accept(2)` returned `EMFILE`.
    FdPressure {
        /// Affected node.
        node: u32,
        /// When the fault is active.
        window: Window,
    },
    /// Break peer-channel transfers (FETCH/PUSH) from `from` to `to`
    /// with probability `rate_ppm` / 1_000_000, decided
    /// deterministically per attempt. A broken attempt fails fast on the
    /// origin side (as if the channel reset), exercising the
    /// fall-back-to-redirect path.
    PeerLoss {
        /// Pulling/pushing node.
        from: u32,
        /// Source/target peer.
        to: u32,
        /// Break probability in parts per million (1_000_000 = all).
        rate_ppm: u32,
        /// When the fault is active.
        window: Window,
    },
    /// Delay peer-channel transfers from `from` to `to` by `delay_ms`
    /// before the attempt starts (a congested or lossy channel).
    PeerDelay {
        /// Pulling/pushing node.
        from: u32,
        /// Source/target peer.
        to: u32,
        /// Added latency per transfer, in milliseconds.
        delay_ms: u64,
        /// When the fault is active.
        window: Window,
    },
    /// Synthetic overload on `node`: every worker-queue sojourn sample
    /// the node observes is inflated by `sojourn_us` microseconds, so
    /// the adaptive admission controller sees a standing queue without
    /// the test having to generate real saturating load.
    Overload {
        /// Affected node.
        node: u32,
        /// Microseconds added to each observed sojourn sample.
        sojourn_us: u64,
        /// When the fault is active.
        window: Window,
    },
    /// Brownout on `node`: every request's fulfillment is slowed by
    /// `delay_ms` — the whole node runs degraded (CPU starvation,
    /// thermal throttle), unlike [`Fault::SlowDisk`] which only touches
    /// file reads.
    Brownout {
        /// Affected node.
        node: u32,
        /// Added latency per request, in milliseconds.
        delay_ms: u64,
        /// When the fault is active.
        window: Window,
    },
}

/// A complete chaos run description: a seed for every probabilistic
/// decision plus the fault list. Two runs of the same plan produce the
/// same verdict stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for deterministic per-packet decisions.
    pub seed: u64,
    /// Faults to inject.
    pub faults: Vec<Fault>,
}

/// Error from [`FaultPlan::from_text`]: the offending line and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

fn window_fields(w: &Window) -> String {
    format!("start_ms={} end_ms={}", w.start_ms, w.end_ms)
}

impl FaultPlan {
    /// A plan with a seed and no faults (useful as a builder start).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Append a fault, builder-style.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Serialize to the line-based text format (see [`FaultPlan::from_text`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# sweb-chaos fault plan v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        for f in &self.faults {
            let line = match f {
                Fault::LoaddLoss { from, to, rate_ppm, window } => format!(
                    "loadd-loss from={from} to={to} rate_ppm={rate_ppm} {}",
                    window_fields(window)
                ),
                Fault::LoaddDelay { from, to, delay_ms, window } => format!(
                    "loadd-delay from={from} to={to} delay_ms={delay_ms} {}",
                    window_fields(window)
                ),
                Fault::Partition { a, b, window } => {
                    format!("partition a={a} b={b} {}", window_fields(window))
                }
                Fault::Crash { node, at_ms } => format!("crash node={node} at_ms={at_ms}"),
                Fault::Revive { node, at_ms } => format!("revive node={node} at_ms={at_ms}"),
                Fault::Pause { node, window } => {
                    format!("pause node={node} {}", window_fields(window))
                }
                Fault::SlowDisk { node, extra_ms, window } => format!(
                    "slow-disk node={node} extra_ms={extra_ms} {}",
                    window_fields(window)
                ),
                Fault::FdPressure { node, window } => {
                    format!("fd-pressure node={node} {}", window_fields(window))
                }
                Fault::PeerLoss { from, to, rate_ppm, window } => format!(
                    "peer-loss from={from} to={to} rate_ppm={rate_ppm} {}",
                    window_fields(window)
                ),
                Fault::PeerDelay { from, to, delay_ms, window } => format!(
                    "peer-delay from={from} to={to} delay_ms={delay_ms} {}",
                    window_fields(window)
                ),
                Fault::Overload { node, sojourn_us, window } => format!(
                    "overload node={node} sojourn_us={sojourn_us} {}",
                    window_fields(window)
                ),
                Fault::Brownout { node, delay_ms, window } => format!(
                    "brownout node={node} delay_ms={delay_ms} {}",
                    window_fields(window)
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parse the text format: one directive per line, `key=value` fields,
    /// `#` comments and blank lines ignored. The format is intentionally
    /// diff- and shell-friendly — CI uploads it on failure and a human
    /// replays it with `--fault-plan FILE`.
    pub fn from_text(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: String| PlanParseError { line: idx + 1, reason };
            let mut parts = line.split_whitespace();
            let verb = parts.next().expect("non-empty line has a first token");
            let fields: Vec<(&str, &str)> =
                parts.map(|p| p.split_once('=').unwrap_or((p, ""))).collect();
            let get = |key: &str| -> Option<&str> {
                fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
            };
            let num = |key: &str| -> Result<u64, PlanParseError> {
                let v = get(key)
                    .ok_or_else(|| err(format!("missing field `{key}`")))?;
                v.parse()
                    .map_err(|_| err(format!("field `{key}`: bad number `{v}`")))
            };
            let window = || -> Result<Window, PlanParseError> {
                Ok(Window { start_ms: num("start_ms")?, end_ms: num("end_ms")? })
            };
            match verb {
                "seed" => {
                    let v = line.split_whitespace().nth(1).unwrap_or("");
                    plan.seed = v
                        .parse()
                        .map_err(|_| err(format!("bad seed `{v}`")))?;
                }
                "loadd-loss" => plan.faults.push(Fault::LoaddLoss {
                    from: num("from")? as u32,
                    to: num("to")? as u32,
                    rate_ppm: num("rate_ppm")? as u32,
                    window: window()?,
                }),
                "loadd-delay" => plan.faults.push(Fault::LoaddDelay {
                    from: num("from")? as u32,
                    to: num("to")? as u32,
                    delay_ms: num("delay_ms")?,
                    window: window()?,
                }),
                "partition" => plan.faults.push(Fault::Partition {
                    a: num("a")? as u32,
                    b: num("b")? as u32,
                    window: window()?,
                }),
                "crash" => plan
                    .faults
                    .push(Fault::Crash { node: num("node")? as u32, at_ms: num("at_ms")? }),
                "revive" => plan
                    .faults
                    .push(Fault::Revive { node: num("node")? as u32, at_ms: num("at_ms")? }),
                "pause" => plan
                    .faults
                    .push(Fault::Pause { node: num("node")? as u32, window: window()? }),
                "slow-disk" => plan.faults.push(Fault::SlowDisk {
                    node: num("node")? as u32,
                    extra_ms: num("extra_ms")?,
                    window: window()?,
                }),
                "fd-pressure" => plan
                    .faults
                    .push(Fault::FdPressure { node: num("node")? as u32, window: window()? }),
                "peer-loss" => plan.faults.push(Fault::PeerLoss {
                    from: num("from")? as u32,
                    to: num("to")? as u32,
                    rate_ppm: num("rate_ppm")? as u32,
                    window: window()?,
                }),
                "peer-delay" => plan.faults.push(Fault::PeerDelay {
                    from: num("from")? as u32,
                    to: num("to")? as u32,
                    delay_ms: num("delay_ms")?,
                    window: window()?,
                }),
                "overload" => plan.faults.push(Fault::Overload {
                    node: num("node")? as u32,
                    sojourn_us: num("sojourn_us")?,
                    window: window()?,
                }),
                "brownout" => plan.faults.push(Fault::Brownout {
                    node: num("node")? as u32,
                    delay_ms: num("delay_ms")?,
                    window: window()?,
                }),
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::seeded(42)
            .with(Fault::LoaddLoss {
                from: 0,
                to: 1,
                rate_ppm: 500_000,
                window: Window::between(100, 900),
            })
            .with(Fault::LoaddDelay { from: 2, to: 0, delay_ms: 75, window: Window::ALWAYS })
            .with(Fault::Partition { a: 1, b: 3, window: Window::between(0, 2_000) })
            .with(Fault::Crash { node: 2, at_ms: 500 })
            .with(Fault::Revive { node: 2, at_ms: 1_500 })
            .with(Fault::Pause { node: 1, window: Window::between(300, 600) })
            .with(Fault::SlowDisk { node: 0, extra_ms: 40, window: Window::ALWAYS })
            .with(Fault::FdPressure { node: 3, window: Window::between(200, 400) })
            .with(Fault::PeerLoss {
                from: 0,
                to: 2,
                rate_ppm: 1_000_000,
                window: Window::between(50, 450),
            })
            .with(Fault::PeerDelay { from: 3, to: 1, delay_ms: 20, window: Window::ALWAYS })
            .with(Fault::Overload {
                node: 1,
                sojourn_us: 30_000,
                window: Window::between(100, 700),
            })
            .with(Fault::Brownout { node: 0, delay_ms: 15, window: Window::between(0, 800) })
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let plan = sample_plan();
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).expect("own output must parse");
        assert_eq!(back, plan);
        // And the re-serialization is byte-stable (CI artifact diffing).
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn parser_skips_comments_and_blank_lines() {
        let text = "# header\n\nseed 7\n  # indented comment\ncrash node=1 at_ms=10\n";
        let plan = FaultPlan::from_text(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.faults, vec![Fault::Crash { node: 1, at_ms: 10 }]);
    }

    #[test]
    fn parser_reports_line_and_reason() {
        let e = FaultPlan::from_text("seed 1\nwobble node=1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("wobble"), "{e}");
        let e = FaultPlan::from_text("crash node=1\n").unwrap_err();
        assert!(e.reason.contains("at_ms"), "{e}");
        let e = FaultPlan::from_text("seed banana\n").unwrap_err();
        assert!(e.reason.contains("banana"), "{e}");
    }

    #[test]
    fn window_containment() {
        let w = Window::between(100, 200);
        assert!(!w.contains(99));
        assert!(w.contains(100));
        assert!(w.contains(199));
        assert!(!w.contains(200));
        assert!(Window::ALWAYS.contains(0));
        assert!(Window::ALWAYS.contains(u64::MAX));
        let open = Window::between(50, 0);
        assert!(!open.contains(49));
        assert!(open.contains(u64::MAX));
    }
}
