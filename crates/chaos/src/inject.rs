//! The runtime half: deterministic point queries against a [`FaultPlan`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::plan::{Fault, FaultPlan};

/// What to do with one outgoing loadd packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxVerdict {
    /// Send it now.
    Deliver,
    /// Silently drop it.
    Drop,
    /// Deliver it after this much added latency.
    Delay(Duration),
}

/// A time-scripted lifecycle operation the cluster driver executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedOp {
    /// Hard-kill the node (no drain, no leaving packet).
    Crash {
        /// Victim node.
        node: u32,
        /// Milliseconds from cluster start.
        at_ms: u64,
    },
    /// Restart the node on its original address.
    Revive {
        /// Node to bring back.
        node: u32,
        /// Milliseconds from cluster start.
        at_ms: u64,
    },
}

impl ScriptedOp {
    /// When the op is due, in milliseconds from cluster start.
    pub fn at_ms(&self) -> u64 {
        match self {
            ScriptedOp::Crash { at_ms, .. } | ScriptedOp::Revive { at_ms, .. } => *at_ms,
        }
    }
}

/// Counters for faults actually injected (not merely configured), so
/// `/sweb-status` can report what the harness really did to a node.
#[derive(Debug, Default)]
pub struct FaultCounts {
    /// loadd packets dropped (loss or partition).
    pub packets_dropped: AtomicU64,
    /// loadd packets delayed.
    pub packets_delayed: AtomicU64,
    /// Accept-loop polls answered "paused".
    pub accepts_paused: AtomicU64,
    /// Connections failed with synthetic fd exhaustion.
    pub fd_rejections: AtomicU64,
    /// File reads slowed by injected disk latency.
    pub slow_reads: AtomicU64,
    /// Peer-channel transfers broken (peer-loss).
    pub peer_drops: AtomicU64,
    /// Peer-channel transfers delayed (peer-delay).
    pub peer_delays: AtomicU64,
    /// Sojourn samples inflated by a synthetic overload fault.
    pub overload_samples: AtomicU64,
    /// Requests slowed by an injected brownout.
    pub brownout_delays: AtomicU64,
}

/// A point-in-time copy of [`FaultCounts`], cheap to ship in a status
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCountsSnapshot {
    /// loadd packets dropped (loss or partition).
    pub packets_dropped: u64,
    /// loadd packets delayed.
    pub packets_delayed: u64,
    /// Accept-loop polls answered "paused".
    pub accepts_paused: u64,
    /// Connections failed with synthetic fd exhaustion.
    pub fd_rejections: u64,
    /// File reads slowed by injected disk latency.
    pub slow_reads: u64,
    /// Peer-channel transfers broken (peer-loss).
    pub peer_drops: u64,
    /// Peer-channel transfers delayed (peer-delay).
    pub peer_delays: u64,
    /// Sojourn samples inflated by a synthetic overload fault.
    pub overload_samples: u64,
    /// Requests slowed by an injected brownout.
    pub brownout_delays: u64,
}

impl FaultCounts {
    /// Copy the current values.
    pub fn snapshot(&self) -> FaultCountsSnapshot {
        FaultCountsSnapshot {
            packets_dropped: self.packets_dropped.load(Ordering::Relaxed),
            packets_delayed: self.packets_delayed.load(Ordering::Relaxed),
            accepts_paused: self.accepts_paused.load(Ordering::Relaxed),
            fd_rejections: self.fd_rejections.load(Ordering::Relaxed),
            slow_reads: self.slow_reads.load(Ordering::Relaxed),
            peer_drops: self.peer_drops.load(Ordering::Relaxed),
            peer_delays: self.peer_delays.load(Ordering::Relaxed),
            overload_samples: self.overload_samples.load(Ordering::Relaxed),
            brownout_delays: self.brownout_delays.load(Ordering::Relaxed),
        }
    }
}

/// splitmix64: a tiny, high-quality mixer — the verdict for packet `seq`
/// on pair `(from, to)` is a pure function of the plan seed, so replays
/// are byte-for-byte identical.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic fault oracle for one cluster run.
///
/// Built from a [`FaultPlan`] and armed with the cluster's start
/// [`Instant`]; every query is answered from the plan plus wall-clock
/// offset. A disabled injector (no plan) answers every query with "no
/// fault" and is safe to leave on production hot paths.
#[derive(Debug)]
pub struct Injector {
    seed: u64,
    faults: Vec<Fault>,
    script: Vec<ScriptedOp>,
    start: Mutex<Option<Instant>>,
    /// Per-(from, to) packet sequence numbers for loss decisions.
    seq: Mutex<std::collections::HashMap<(u32, u32), u64>>,
    counts: FaultCounts,
    active: bool,
}

impl Default for Injector {
    fn default() -> Injector {
        Injector::disabled()
    }
}

impl Injector {
    /// An injector that never injects anything.
    pub fn disabled() -> Injector {
        Injector::from_plan(&FaultPlan::default())
    }

    /// Build the runtime tables from a plan. Crash/Revive faults become
    /// the [scripted ops](Injector::scripted_ops), sorted by due time.
    pub fn from_plan(plan: &FaultPlan) -> Injector {
        let mut script = Vec::new();
        let mut faults = Vec::new();
        for f in &plan.faults {
            match *f {
                Fault::Crash { node, at_ms } => script.push(ScriptedOp::Crash { node, at_ms }),
                Fault::Revive { node, at_ms } => script.push(ScriptedOp::Revive { node, at_ms }),
                other => faults.push(other),
            }
        }
        script.sort_by_key(|op| op.at_ms());
        let active = !faults.is_empty() || !script.is_empty();
        Injector {
            seed: plan.seed,
            faults,
            script,
            start: Mutex::new(None),
            seq: Mutex::new(std::collections::HashMap::new()),
            counts: FaultCounts::default(),
            active,
        }
    }

    /// Whether the plan contains any fault at all. When false, every
    /// query short-circuits.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Fix the run's time origin. Idempotent: only the first call wins,
    /// so every node thread can arm on startup without coordination.
    pub fn arm(&self, start: Instant) {
        let mut s = self.start.lock().expect("injector start lock");
        if s.is_none() {
            *s = Some(start);
        }
    }

    /// Milliseconds since [`arm`](Injector::arm); 0 if never armed.
    pub fn now_ms(&self) -> u64 {
        self.start
            .lock()
            .expect("injector start lock")
            .map(|s| s.elapsed().as_millis() as u64)
            .unwrap_or(0)
    }

    /// Cumulative injected-fault counters.
    pub fn counts(&self) -> &FaultCounts {
        &self.counts
    }

    /// Scripted crash/revive ops, sorted by due time.
    pub fn scripted_ops(&self) -> &[ScriptedOp] {
        &self.script
    }

    /// Verdict for a loadd packet `from → to` right now.
    pub fn loadd_tx(&self, from: u32, to: u32) -> TxVerdict {
        if !self.active {
            return TxVerdict::Deliver;
        }
        let now = self.now_ms();
        self.loadd_tx_at(from, to, now)
    }

    /// Verdict for a loadd packet `from → to` at a given run offset.
    /// Pure except for the per-pair sequence counter; exposed separately
    /// so tests can drive simulated clocks.
    pub fn loadd_tx_at(&self, from: u32, to: u32, now_ms: u64) -> TxVerdict {
        if !self.active {
            return TxVerdict::Deliver;
        }
        let seq = {
            let mut map = self.seq.lock().expect("injector seq lock");
            let c = map.entry((from, to)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let mut delay = Duration::ZERO;
        for f in &self.faults {
            match *f {
                Fault::Partition { a, b, window }
                    if window.contains(now_ms)
                        && ((from, to) == (a, b) || (from, to) == (b, a)) =>
                {
                    self.counts.packets_dropped.fetch_add(1, Ordering::Relaxed);
                    return TxVerdict::Drop;
                }
                Fault::LoaddLoss { from: f0, to: t0, rate_ppm, window }
                    if window.contains(now_ms) && (f0, t0) == (from, to) =>
                {
                    let h = splitmix64(
                        self.seed
                            ^ ((from as u64) << 40)
                            ^ ((to as u64) << 20)
                            ^ seq,
                    );
                    if h % 1_000_000 < rate_ppm as u64 {
                        self.counts.packets_dropped.fetch_add(1, Ordering::Relaxed);
                        return TxVerdict::Drop;
                    }
                }
                Fault::LoaddDelay { from: f0, to: t0, delay_ms, window }
                    if window.contains(now_ms) && (f0, t0) == (from, to) =>
                {
                    delay = delay.max(Duration::from_millis(delay_ms));
                }
                _ => {}
            }
        }
        if delay > Duration::ZERO {
            self.counts.packets_delayed.fetch_add(1, Ordering::Relaxed);
            TxVerdict::Delay(delay)
        } else {
            TxVerdict::Deliver
        }
    }

    /// Verdict for a peer-channel transfer `from → to` right now.
    pub fn peer_tx(&self, from: u32, to: u32) -> TxVerdict {
        if !self.active {
            return TxVerdict::Deliver;
        }
        let now = self.now_ms();
        self.peer_tx_at(from, to, now)
    }

    /// Verdict for a peer-channel transfer `from → to` at a given run
    /// offset. A [`Fault::Partition`] severs the peer channel along with
    /// loadd (one cable, two protocols); [`Fault::PeerLoss`] and
    /// [`Fault::PeerDelay`] hit only this channel. The sequence counter
    /// lives in a disjoint key space (`from | 0x8000_0000`) so peer
    /// traffic never perturbs loadd loss determinism.
    pub fn peer_tx_at(&self, from: u32, to: u32, now_ms: u64) -> TxVerdict {
        if !self.active {
            return TxVerdict::Deliver;
        }
        let seq = {
            let mut map = self.seq.lock().expect("injector seq lock");
            let c = map.entry((from | 0x8000_0000, to)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let mut delay = Duration::ZERO;
        for f in &self.faults {
            match *f {
                Fault::Partition { a, b, window }
                    if window.contains(now_ms)
                        && ((from, to) == (a, b) || (from, to) == (b, a)) =>
                {
                    self.counts.peer_drops.fetch_add(1, Ordering::Relaxed);
                    return TxVerdict::Drop;
                }
                Fault::PeerLoss { from: f0, to: t0, rate_ppm, window }
                    if window.contains(now_ms) && (f0, t0) == (from, to) =>
                {
                    let h = splitmix64(
                        self.seed
                            ^ (((from | 0x8000_0000) as u64) << 40)
                            ^ ((to as u64) << 20)
                            ^ seq,
                    );
                    if h % 1_000_000 < rate_ppm as u64 {
                        self.counts.peer_drops.fetch_add(1, Ordering::Relaxed);
                        return TxVerdict::Drop;
                    }
                }
                Fault::PeerDelay { from: f0, to: t0, delay_ms, window }
                    if window.contains(now_ms) && (f0, t0) == (from, to) =>
                {
                    delay = delay.max(Duration::from_millis(delay_ms));
                }
                _ => {}
            }
        }
        if delay > Duration::ZERO {
            self.counts.peer_delays.fetch_add(1, Ordering::Relaxed);
            TxVerdict::Delay(delay)
        } else {
            TxVerdict::Deliver
        }
    }

    /// Whether `node`'s accept loop should hold off right now.
    pub fn accept_paused(&self, node: u32) -> bool {
        self.active && self.accept_paused_at(node, self.now_ms())
    }

    /// Pause query at an explicit run offset.
    pub fn accept_paused_at(&self, node: u32, now_ms: u64) -> bool {
        let hit = self.faults.iter().any(|f| {
            matches!(*f, Fault::Pause { node: n, window } if n == node && window.contains(now_ms))
        });
        if hit {
            self.counts.accepts_paused.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Whether `node` should fail this freshly accepted connection as if
    /// the process were out of file descriptors.
    pub fn fd_pressure(&self, node: u32) -> bool {
        self.active && self.fd_pressure_at(node, self.now_ms())
    }

    /// fd-pressure query at an explicit run offset.
    pub fn fd_pressure_at(&self, node: u32, now_ms: u64) -> bool {
        let hit = self.faults.iter().any(|f| {
            matches!(*f, Fault::FdPressure { node: n, window }
                if n == node && window.contains(now_ms))
        });
        if hit {
            self.counts.fd_rejections.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Artificial latency to add to a file read on `node` right now.
    pub fn disk_delay(&self, node: u32) -> Option<Duration> {
        if !self.active {
            return None;
        }
        self.disk_delay_at(node, self.now_ms())
    }

    /// Slow-disk query at an explicit run offset.
    pub fn disk_delay_at(&self, node: u32, now_ms: u64) -> Option<Duration> {
        let mut extra = Duration::ZERO;
        for f in &self.faults {
            if let Fault::SlowDisk { node: n, extra_ms, window } = *f {
                if n == node && window.contains(now_ms) {
                    extra = extra.max(Duration::from_millis(extra_ms));
                }
            }
        }
        if extra > Duration::ZERO {
            self.counts.slow_reads.fetch_add(1, Ordering::Relaxed);
            Some(extra)
        } else {
            None
        }
    }

    /// Microseconds of synthetic queueing to add to `node`'s sojourn
    /// samples right now (the overload fault shape).
    pub fn overload_sojourn(&self, node: u32) -> Option<u64> {
        if !self.active {
            return None;
        }
        self.overload_sojourn_at(node, self.now_ms())
    }

    /// Overload query at an explicit run offset.
    pub fn overload_sojourn_at(&self, node: u32, now_ms: u64) -> Option<u64> {
        let mut extra = 0u64;
        for f in &self.faults {
            if let Fault::Overload { node: n, sojourn_us, window } = *f {
                if n == node && window.contains(now_ms) {
                    extra = extra.max(sojourn_us);
                }
            }
        }
        if extra > 0 {
            self.counts.overload_samples.fetch_add(1, Ordering::Relaxed);
            Some(extra)
        } else {
            None
        }
    }

    /// Artificial latency every request on `node` pays right now (the
    /// brownout fault shape: the whole node degraded, not just disk).
    pub fn brownout_delay(&self, node: u32) -> Option<Duration> {
        if !self.active {
            return None;
        }
        self.brownout_delay_at(node, self.now_ms())
    }

    /// Brownout query at an explicit run offset.
    pub fn brownout_delay_at(&self, node: u32, now_ms: u64) -> Option<Duration> {
        let mut extra = Duration::ZERO;
        for f in &self.faults {
            if let Fault::Brownout { node: n, delay_ms, window } = *f {
                if n == node && window.contains(now_ms) {
                    extra = extra.max(Duration::from_millis(delay_ms));
                }
            }
        }
        if extra > Duration::ZERO {
            self.counts.brownout_delays.fetch_add(1, Ordering::Relaxed);
            Some(extra)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Fault, FaultPlan, Window};

    #[test]
    fn disabled_injector_never_injects() {
        let inj = Injector::disabled();
        assert!(!inj.is_active());
        assert_eq!(inj.loadd_tx_at(0, 1, 500), TxVerdict::Deliver);
        assert!(!inj.accept_paused_at(0, 500));
        assert!(!inj.fd_pressure_at(0, 500));
        assert_eq!(inj.disk_delay_at(0, 500), None);
        assert_eq!(inj.counts().snapshot(), FaultCountsSnapshot::default());
    }

    #[test]
    fn partition_drops_both_directions_inside_window() {
        let plan = FaultPlan::seeded(1)
            .with(Fault::Partition { a: 0, b: 2, window: Window::between(100, 200) });
        let inj = Injector::from_plan(&plan);
        assert_eq!(inj.loadd_tx_at(0, 2, 150), TxVerdict::Drop);
        assert_eq!(inj.loadd_tx_at(2, 0, 150), TxVerdict::Drop);
        assert_eq!(inj.loadd_tx_at(0, 1, 150), TxVerdict::Deliver, "uninvolved pair unaffected");
        assert_eq!(inj.loadd_tx_at(0, 2, 250), TxVerdict::Deliver, "window over");
        assert_eq!(inj.counts().snapshot().packets_dropped, 2);
    }

    #[test]
    fn loss_is_deterministic_and_rate_shaped() {
        let plan = FaultPlan::seeded(42).with(Fault::LoaddLoss {
            from: 0,
            to: 1,
            rate_ppm: 500_000,
            window: Window::ALWAYS,
        });
        let a = Injector::from_plan(&plan);
        let b = Injector::from_plan(&plan);
        let run = |inj: &Injector| -> Vec<TxVerdict> {
            (0..1000).map(|_| inj.loadd_tx_at(0, 1, 10)).collect()
        };
        let va = run(&a);
        assert_eq!(va, run(&b), "same plan must give the same verdict stream");
        let dropped = va.iter().filter(|v| **v == TxVerdict::Drop).count();
        assert!(
            (300..700).contains(&dropped),
            "50% loss should drop roughly half of 1000 packets, got {dropped}"
        );
        // A different seed gives a different stream.
        let c = Injector::from_plan(&FaultPlan { seed: 43, ..plan.clone() });
        assert_ne!(va, run(&c), "different seed should reshuffle verdicts");
    }

    #[test]
    fn full_loss_drops_everything_and_delay_composes() {
        let plan = FaultPlan::seeded(9)
            .with(Fault::LoaddLoss { from: 1, to: 0, rate_ppm: 1_000_000, window: Window::ALWAYS })
            .with(Fault::LoaddDelay { from: 2, to: 0, delay_ms: 30, window: Window::ALWAYS });
        let inj = Injector::from_plan(&plan);
        for _ in 0..50 {
            assert_eq!(inj.loadd_tx_at(1, 0, 5), TxVerdict::Drop);
        }
        assert_eq!(inj.loadd_tx_at(2, 0, 5), TxVerdict::Delay(Duration::from_millis(30)));
        assert_eq!(inj.counts().snapshot().packets_delayed, 1);
    }

    #[test]
    fn scripted_ops_sorted_by_due_time() {
        let plan = FaultPlan::seeded(0)
            .with(Fault::Revive { node: 1, at_ms: 900 })
            .with(Fault::Crash { node: 1, at_ms: 300 });
        let inj = Injector::from_plan(&plan);
        assert_eq!(
            inj.scripted_ops(),
            &[ScriptedOp::Crash { node: 1, at_ms: 300 }, ScriptedOp::Revive { node: 1, at_ms: 900 }]
        );
        assert!(inj.is_active());
    }

    #[test]
    fn node_local_faults_respect_node_and_window() {
        let plan = FaultPlan::seeded(0)
            .with(Fault::Pause { node: 1, window: Window::between(10, 20) })
            .with(Fault::SlowDisk { node: 0, extra_ms: 25, window: Window::between(0, 100) })
            .with(Fault::FdPressure { node: 2, window: Window::ALWAYS });
        let inj = Injector::from_plan(&plan);
        assert!(inj.accept_paused_at(1, 15));
        assert!(!inj.accept_paused_at(1, 25));
        assert!(!inj.accept_paused_at(0, 15));
        assert_eq!(inj.disk_delay_at(0, 50), Some(Duration::from_millis(25)));
        assert_eq!(inj.disk_delay_at(0, 150), None);
        assert_eq!(inj.disk_delay_at(1, 50), None);
        assert!(inj.fd_pressure_at(2, 1_000_000));
        assert!(!inj.fd_pressure_at(0, 1_000_000));
        let snap = inj.counts().snapshot();
        assert_eq!(
            (snap.accepts_paused, snap.slow_reads, snap.fd_rejections),
            (1, 1, 1)
        );
    }

    #[test]
    fn peer_faults_hit_only_the_peer_channel() {
        let plan = FaultPlan::seeded(7)
            .with(Fault::PeerLoss { from: 0, to: 1, rate_ppm: 1_000_000, window: Window::ALWAYS })
            .with(Fault::PeerDelay { from: 2, to: 1, delay_ms: 40, window: Window::between(0, 100) });
        let inj = Injector::from_plan(&plan);
        for _ in 0..20 {
            assert_eq!(inj.peer_tx_at(0, 1, 5), TxVerdict::Drop);
        }
        assert_eq!(inj.loadd_tx_at(0, 1, 5), TxVerdict::Deliver, "loadd unaffected by peer-loss");
        assert_eq!(inj.peer_tx_at(2, 1, 50), TxVerdict::Delay(Duration::from_millis(40)));
        assert_eq!(inj.peer_tx_at(2, 1, 150), TxVerdict::Deliver, "window over");
        assert_eq!(inj.peer_tx_at(1, 0, 5), TxVerdict::Deliver, "reverse direction unaffected");
        let snap = inj.counts().snapshot();
        assert_eq!((snap.peer_drops, snap.peer_delays), (20, 1));
        assert_eq!(snap.packets_dropped, 0, "peer faults must not count as loadd losses");
    }

    #[test]
    fn overload_inflates_sojourns_only_inside_window() {
        let plan = FaultPlan::seeded(3)
            .with(Fault::Overload { node: 1, sojourn_us: 30_000, window: Window::between(100, 500) })
            .with(Fault::Overload { node: 1, sojourn_us: 80_000, window: Window::between(200, 300) });
        let inj = Injector::from_plan(&plan);
        assert_eq!(inj.overload_sojourn_at(1, 150), Some(30_000));
        assert_eq!(inj.overload_sojourn_at(1, 250), Some(80_000), "overlapping faults take the max");
        assert_eq!(inj.overload_sojourn_at(1, 600), None, "window over");
        assert_eq!(inj.overload_sojourn_at(0, 150), None, "other node unaffected");
        assert_eq!(inj.counts().snapshot().overload_samples, 2);
    }

    #[test]
    fn brownout_slows_every_request_on_the_node() {
        let plan = FaultPlan::seeded(4)
            .with(Fault::Brownout { node: 0, delay_ms: 15, window: Window::between(0, 800) });
        let inj = Injector::from_plan(&plan);
        assert_eq!(inj.brownout_delay_at(0, 400), Some(Duration::from_millis(15)));
        assert_eq!(inj.brownout_delay_at(0, 900), None, "window over");
        assert_eq!(inj.brownout_delay_at(2, 400), None, "other node unaffected");
        let snap = inj.counts().snapshot();
        assert_eq!(snap.brownout_delays, 1);
        assert_eq!(snap.slow_reads, 0, "brownout must not count as slow-disk");
    }

    #[test]
    fn partition_severs_the_peer_channel_too() {
        let plan = FaultPlan::seeded(1)
            .with(Fault::Partition { a: 0, b: 2, window: Window::between(100, 200) });
        let inj = Injector::from_plan(&plan);
        assert_eq!(inj.peer_tx_at(0, 2, 150), TxVerdict::Drop);
        assert_eq!(inj.peer_tx_at(2, 0, 150), TxVerdict::Drop);
        assert_eq!(inj.peer_tx_at(0, 1, 150), TxVerdict::Deliver, "uninvolved pair unaffected");
        assert_eq!(inj.peer_tx_at(0, 2, 250), TxVerdict::Deliver, "window over");
        assert_eq!(inj.counts().snapshot().peer_drops, 2);
    }

    #[test]
    fn peer_loss_is_deterministic_and_rate_shaped() {
        let plan = FaultPlan::seeded(42).with(Fault::PeerLoss {
            from: 0,
            to: 1,
            rate_ppm: 500_000,
            window: Window::ALWAYS,
        });
        let a = Injector::from_plan(&plan);
        let b = Injector::from_plan(&plan);
        let run = |inj: &Injector| -> Vec<TxVerdict> {
            (0..1000).map(|_| inj.peer_tx_at(0, 1, 10)).collect()
        };
        let va = run(&a);
        assert_eq!(va, run(&b), "same plan must give the same verdict stream");
        let dropped = va.iter().filter(|v| **v == TxVerdict::Drop).count();
        assert!(
            (300..700).contains(&dropped),
            "50% peer loss should drop roughly half of 1000 transfers, got {dropped}"
        );
    }

    #[test]
    fn arm_is_idempotent() {
        let inj = Injector::from_plan(&FaultPlan::seeded(1).with(Fault::Crash { node: 0, at_ms: 1 }));
        let t0 = Instant::now();
        inj.arm(t0);
        inj.arm(t0 + Duration::from_secs(100));
        assert!(inj.now_ms() < 10_000, "second arm must not move the origin");
    }
}
