//! End-to-end tests of the event loop against real sockets: serving,
//! keep-alive, pipelining, slow-client eviction, and 503 shedding.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use sweb_http::{Request, Response};
use sweb_reactor::{App, FileBody, ReactorConfig, ReactorHandle, Reply};

/// Minimal app: answers with the request target, counts every hook.
/// `/big` serves the configured in-memory body (the cached-file shape);
/// `/file` serves the configured file as a streamed [`FileBody`].
#[derive(Default)]
struct EchoApp {
    served: AtomicUsize,
    evicted: AtomicUsize,
    shed: AtomicUsize,
    bad: AtomicUsize,
    open: AtomicUsize,
    closed: AtomicUsize,
    zero_copy: AtomicUsize,
    sendfile: AtomicUsize,
    shard_starts: AtomicUsize,
    shard_stops: AtomicUsize,
    big: Mutex<Option<Bytes>>,
    file_path: Mutex<Option<PathBuf>>,
}

impl App for EchoApp {
    fn respond(&self, _peer: &str, req: &Request, body: &[u8]) -> Reply {
        self.served.fetch_add(1, Ordering::SeqCst);
        if req.target == "/big" {
            if let Some(b) = self.big.lock().unwrap().clone() {
                return Response::ok(b, "application/octet-stream").into();
            }
        }
        if req.target == "/file" {
            if let Some(p) = self.file_path.lock().unwrap().clone() {
                let file = std::fs::File::open(&p).unwrap();
                let len = file.metadata().unwrap().len();
                return Reply {
                    response: Response::ok("", "application/octet-stream"),
                    file: Some(FileBody { file, len }),
                };
            }
        }
        Response::ok(format!("target={} body={}", req.target, body.len()), "text/plain").into()
    }
    fn on_conn_open(&self) {
        self.open.fetch_add(1, Ordering::SeqCst);
    }
    fn on_conn_close(&self) {
        self.closed.fetch_add(1, Ordering::SeqCst);
    }
    fn on_evict(&self) {
        self.evicted.fetch_add(1, Ordering::SeqCst);
    }
    fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::SeqCst);
    }
    fn on_bad_request(&self) {
        self.bad.fetch_add(1, Ordering::SeqCst);
    }
    fn on_zero_copy(&self, _bytes: usize) {
        self.zero_copy.fetch_add(1, Ordering::SeqCst);
    }
    fn on_sendfile(&self, _bytes: usize) {
        self.sendfile.fetch_add(1, Ordering::SeqCst);
    }
    fn on_shard_start(&self) {
        self.shard_starts.fetch_add(1, Ordering::SeqCst);
    }
    fn on_shard_stop(&self) {
        self.shard_stops.fetch_add(1, Ordering::SeqCst);
    }
}

struct TestServer {
    app: Arc<EchoApp>,
    handle: Option<ReactorHandle>,
    shutdown: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl TestServer {
    fn start(cfg: ReactorConfig) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let app = Arc::new(EchoApp::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = sweb_reactor::spawn(
            listener,
            Arc::clone(&app) as Arc<dyn App>,
            cfg,
            Arc::clone(&shutdown),
        )
        .unwrap();
        let addr = handle.addr;
        TestServer { app, handle: Some(handle), shutdown, addr }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    }

    /// One full HTTP/1.0 exchange: write `raw`, read to EOF.
    fn exchange(&self, raw: &[u8]) -> String {
        let mut s = self.connect();
        s.write_all(raw).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn serves_a_simple_get() {
    let srv = TestServer::start(ReactorConfig::default());
    let reply = srv.exchange(b"GET /hello HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
    assert!(reply.contains("target=/hello"), "{reply}");
    assert_eq!(srv.app.served.load(Ordering::SeqCst), 1);
}

#[test]
fn serves_post_bodies_and_rejects_missing_length() {
    let srv = TestServer::start(ReactorConfig::default());
    let reply = srv.exchange(b"POST /cgi HTTP/1.0\r\nContent-Length: 4\r\n\r\nabcd");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
    assert!(reply.contains("body=4"), "{reply}");
    let reply = srv.exchange(b"POST /cgi HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 400"), "{reply}");
    assert_eq!(srv.app.bad.load(Ordering::SeqCst), 1);
}

#[test]
fn malformed_request_gets_400_and_close() {
    let srv = TestServer::start(ReactorConfig::default());
    let reply = srv.exchange(b"GET nopath HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 400"), "{reply}");
    assert_eq!(srv.app.bad.load(Ordering::SeqCst), 1);
}

#[test]
fn keepalive_reuses_the_connection_and_pipelines() {
    let srv = TestServer::start(ReactorConfig::default());
    let mut s = srv.connect();
    // Two pipelined keep-alive requests in a single write.
    s.write_all(
        b"GET /a HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n\
          GET /b HTTP/1.0\r\n\r\n",
    )
    .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(out.contains("target=/a"), "{out}");
    assert!(out.contains("target=/b"), "{out}");
    assert_eq!(out.matches("HTTP/1.0 200").count(), 2, "{out}");
    // One connection carried both requests.
    assert_eq!(srv.app.open.load(Ordering::SeqCst), 1);
    assert_eq!(srv.app.served.load(Ordering::SeqCst), 2);
}

#[test]
fn slow_client_is_evicted_without_stalling_others() {
    let cfg = ReactorConfig {
        read_timeout: Duration::from_millis(250),
        timer_tick_ms: 10,
        ..ReactorConfig::default()
    };
    let srv = TestServer::start(cfg);

    // The slow client sends half a request line and then goes silent.
    let mut slow = srv.connect();
    slow.write_all(b"GET /never-fin").unwrap();

    // Healthy clients keep being served the whole time.
    let t0 = Instant::now();
    let mut healthy_rounds = 0;
    while t0.elapsed() < Duration::from_millis(400) {
        let reply = srv.exchange(b"GET /healthy HTTP/1.0\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.0 200"), "healthy request failed: {reply}");
        healthy_rounds += 1;
    }
    assert!(healthy_rounds >= 3, "healthy clients stalled: {healthy_rounds} rounds");

    // The wheel must have evicted the slow client by now: its socket
    // reads EOF and the eviction counter moved.
    assert!(
        wait_until(Duration::from_secs(2), || srv.app.evicted.load(Ordering::SeqCst) >= 1),
        "slow client never evicted"
    );
    let mut buf = [0u8; 64];
    let n = slow.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF on the evicted connection");
    // The slow client never completed a request, so nothing was served
    // on its behalf.
    assert_eq!(srv.app.bad.load(Ordering::SeqCst), 0);
}

#[test]
fn connections_beyond_the_cap_are_shed_with_503() {
    let cfg = ReactorConfig { max_conns: 2, ..ReactorConfig::default() };
    let srv = TestServer::start(cfg);

    // Two idle connections fill the admission cap.
    let _a = srv.connect();
    let _b = srv.connect();
    assert!(
        wait_until(Duration::from_secs(2), || srv.app.open.load(Ordering::SeqCst) == 2),
        "first two connections not tracked"
    );

    // The third is refused with 503 and closed.
    let mut c = srv.connect();
    let mut out = String::new();
    let _ = c.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.0 503"), "expected shed, got: {out:?}");
    assert_eq!(srv.app.shed.load(Ordering::SeqCst), 1);

    // Dropping one admitted connection frees a slot for new work.
    drop(_a);
    assert!(
        wait_until(Duration::from_secs(2), || srv.app.closed.load(Ordering::SeqCst) >= 1),
        "freed slot never noticed"
    );
    let reply = srv.exchange(b"GET /after HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
}

#[test]
fn clean_shutdown_closes_open_connections() {
    let srv = TestServer::start(ReactorConfig::default());
    let mut idle = srv.connect();
    assert!(wait_until(Duration::from_secs(2), || srv.app.open.load(Ordering::SeqCst) == 1));
    drop(srv); // flags shutdown and joins the loop
    let mut buf = [0u8; 8];
    let n = idle.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "open connection must be closed on shutdown");
}

// ---------------------------------------------------------------- transmit

/// Deterministic binary payload (no `rand` needed; not valid UTF-8).
fn payload(len: usize) -> Vec<u8> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

/// Read a whole response, draining the body in `chunk`-byte nibbles with
/// `pause` between reads (a deliberately slow client), and return
/// (head, body) split at the header terminator.
fn slow_read_response(s: &mut TcpStream, chunk: usize, pause: Duration) -> (String, Vec<u8>) {
    let mut raw = Vec::new();
    let mut buf = vec![0u8; chunk];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&buf[..n]);
                std::thread::sleep(pause);
            }
            Err(e) => panic!("read: {e}"),
        }
    }
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header terminator in response");
    let head = String::from_utf8(raw[..split + 4].to_vec()).unwrap();
    (head, raw[split + 4..].to_vec())
}

#[test]
fn large_cached_body_resumes_across_partial_writes() {
    // A body far bigger than any socket buffer forces EAGAIN resumption,
    // and a write timeout shorter than the total transfer proves the
    // deadline re-arms on progress (a slow-but-live reader survives).
    let cfg = ReactorConfig {
        write_timeout: Duration::from_millis(400),
        timer_tick_ms: 10,
        ..ReactorConfig::default()
    };
    let srv = TestServer::start(cfg);
    let body = payload(8 << 20);
    *srv.app.big.lock().unwrap() = Some(Bytes::from(body.clone()));

    let mut s = srv.connect();
    s.write_all(b"GET /big HTTP/1.0\r\n\r\n").unwrap();
    let t0 = Instant::now();
    let (head, got) = slow_read_response(&mut s, 256 << 10, Duration::from_millis(20));
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(head.contains(&format!("Content-Length: {}\r\n", body.len())), "{head}");
    assert_eq!(got.len(), body.len(), "body truncated after {:?}", t0.elapsed());
    assert_eq!(got, body, "body corrupted in transit");
    assert_eq!(srv.app.zero_copy.load(Ordering::SeqCst), 1, "zero-copy path not taken");
    assert_eq!(srv.app.evicted.load(Ordering::SeqCst), 0, "live reader was evicted");
}

#[test]
fn sequential_write_fallback_serves_identical_bytes() {
    // use_writev: false exercises the portable two-write fallback; the
    // bytes on the wire must be indistinguishable.
    let cfg = ReactorConfig { use_writev: false, ..ReactorConfig::default() };
    let srv = TestServer::start(cfg);
    let body = payload(4 << 20);
    *srv.app.big.lock().unwrap() = Some(Bytes::from(body.clone()));

    let mut s = srv.connect();
    s.write_all(b"GET /big HTTP/1.0\r\n\r\n").unwrap();
    let (head, got) = slow_read_response(&mut s, 256 << 10, Duration::from_millis(5));
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert_eq!(got, body);
    assert_eq!(srv.app.zero_copy.load(Ordering::SeqCst), 1);
}

#[test]
fn file_body_streams_intact_with_a_slow_reader() {
    let dir = std::env::temp_dir().join(format!("sweb-reactor-sf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("large.bin");
    let body = payload(8 << 20);
    std::fs::write(&path, &body).unwrap();

    let cfg = ReactorConfig {
        write_timeout: Duration::from_millis(400),
        timer_tick_ms: 10,
        ..ReactorConfig::default()
    };
    let srv = TestServer::start(cfg);
    *srv.app.file_path.lock().unwrap() = Some(path);

    let mut s = srv.connect();
    s.write_all(b"GET /file HTTP/1.0\r\n\r\n").unwrap();
    let (head, got) = slow_read_response(&mut s, 256 << 10, Duration::from_millis(20));
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert!(head.contains(&format!("Content-Length: {}\r\n", body.len())), "{head}");
    assert_eq!(got.len(), body.len(), "file body truncated");
    assert_eq!(got, body, "file body corrupted in transit");
    assert_eq!(srv.app.evicted.load(Ordering::SeqCst), 0, "live reader was evicted");
    if cfg!(target_os = "linux") {
        assert_eq!(srv.app.sendfile.load(Ordering::SeqCst), 1, "sendfile path not taken");
    }
    let _ = std::fs::remove_dir_all(std::env::temp_dir().join(format!(
        "sweb-reactor-sf-{}",
        std::process::id()
    )));
}

#[test]
fn file_body_worker_fallback_when_sendfile_disabled() {
    let dir = std::env::temp_dir().join(format!("sweb-reactor-nosf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("large.bin");
    let body = payload(2 << 20);
    std::fs::write(&path, &body).unwrap();

    let cfg = ReactorConfig { use_sendfile: false, ..ReactorConfig::default() };
    let srv = TestServer::start(cfg);
    *srv.app.file_path.lock().unwrap() = Some(path);

    let mut s = srv.connect();
    s.write_all(b"GET /file HTTP/1.0\r\n\r\n").unwrap();
    let (head, got) = slow_read_response(&mut s, 256 << 10, Duration::from_millis(2));
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert_eq!(got, body, "worker-materialized file body corrupted");
    assert_eq!(srv.app.sendfile.load(Ordering::SeqCst), 0, "sendfile must be disabled");
    let _ = std::fs::remove_dir_all(std::env::temp_dir().join(format!(
        "sweb-reactor-nosf-{}",
        std::process::id()
    )));
}

#[test]
fn head_on_file_body_reports_length_without_body() {
    let dir = std::env::temp_dir().join(format!("sweb-reactor-head-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.bin");
    std::fs::write(&path, payload(1 << 20)).unwrap();

    let srv = TestServer::start(ReactorConfig::default());
    *srv.app.file_path.lock().unwrap() = Some(path);

    let reply = srv.exchange(b"HEAD /file HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
    assert!(reply.contains(&format!("Content-Length: {}\r\n", 1 << 20)), "{reply}");
    assert!(reply.ends_with("\r\n\r\n"), "HEAD must carry no body: {reply:?}");
    let _ = std::fs::remove_dir_all(std::env::temp_dir().join(format!(
        "sweb-reactor-head-{}",
        std::process::id()
    )));
}

// ---------------------------------------------------------------- sharded

/// One HTTP/1.0 exchange against `addr` on a fresh connection.
fn exchange_at(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(raw).unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

#[test]
fn sharded_group_serves_every_request_and_runs_all_loops() {
    // Four shards, one app per shard so per-shard activity is visible.
    let listener = sweb_reactor::sys::bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
    let apps: Vec<Arc<EchoApp>> = (0..4).map(|_| Arc::new(EchoApp::default())).collect();
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = sweb_reactor::spawn_sharded(
        listener,
        apps.iter().map(|a| Arc::clone(a) as Arc<dyn App>).collect(),
        ReactorConfig::default(),
        Arc::clone(&shutdown),
    )
    .unwrap();
    assert_eq!(handle.shard_count(), 4);
    if cfg!(target_os = "linux") {
        assert_eq!(handle.accept_mode, "reuseport");
    }
    let addr = handle.addr;

    let total_started =
        || apps.iter().map(|a| a.shard_starts.load(Ordering::SeqCst)).sum::<usize>();
    assert!(wait_until(Duration::from_secs(2), || total_started() == 4), "shards never started");

    for i in 0..24 {
        let reply = exchange_at(addr, format!("GET /r{i} HTTP/1.0\r\n\r\n").as_bytes());
        assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
        assert!(reply.contains(&format!("target=/r{i}")), "{reply}");
    }
    let total_served = apps.iter().map(|a| a.served.load(Ordering::SeqCst)).sum::<usize>();
    assert_eq!(total_served, 24, "every request must be served exactly once across shards");

    shutdown.store(true, Ordering::Relaxed);
    handle.join().unwrap();
    let total_stopped = apps.iter().map(|a| a.shard_stops.load(Ordering::SeqCst)).sum::<usize>();
    assert_eq!(total_stopped, 4, "every shard loop must report stopping");
}

#[test]
fn handoff_fallback_round_robins_accepts_across_shards() {
    // force_handoff_accept exercises the portable path even on Linux: a
    // single acceptor thread deals streams into per-shard queues.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let apps: Vec<Arc<EchoApp>> = (0..2).map(|_| Arc::new(EchoApp::default())).collect();
    let shutdown = Arc::new(AtomicBool::new(false));
    let cfg = ReactorConfig { force_handoff_accept: true, ..ReactorConfig::default() };
    let handle = sweb_reactor::spawn_sharded(
        listener,
        apps.iter().map(|a| Arc::clone(a) as Arc<dyn App>).collect(),
        cfg,
        Arc::clone(&shutdown),
    )
    .unwrap();
    assert_eq!(handle.accept_mode, "handoff");
    let addr = handle.addr;

    for i in 0..8 {
        let reply = exchange_at(addr, format!("GET /h{i} HTTP/1.0\r\n\r\n").as_bytes());
        assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
        assert!(reply.contains(&format!("target=/h{i}")), "{reply}");
    }
    // Strict round-robin: 8 connections over 2 shards is 4 each.
    assert_eq!(apps[0].served.load(Ordering::SeqCst), 4);
    assert_eq!(apps[1].served.load(Ordering::SeqCst), 4);

    shutdown.store(true, Ordering::Relaxed);
    handle.join().unwrap();
}

#[test]
fn copy_mode_still_serves_correct_bytes() {
    // The benchmark baseline: contiguous serialization, no zero-copy hook.
    let cfg = ReactorConfig {
        transmit: sweb_reactor::TransmitMode::Copy,
        ..ReactorConfig::default()
    };
    let srv = TestServer::start(cfg);
    let body = payload(1 << 20);
    *srv.app.big.lock().unwrap() = Some(Bytes::from(body.clone()));

    let mut s = srv.connect();
    s.write_all(b"GET /big HTTP/1.0\r\n\r\n").unwrap();
    let (head, got) = slow_read_response(&mut s, 256 << 10, Duration::from_millis(2));
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    assert_eq!(got, body);
    assert_eq!(srv.app.zero_copy.load(Ordering::SeqCst), 0, "copy mode must not zero-copy");
}
