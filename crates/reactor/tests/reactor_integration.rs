//! End-to-end tests of the event loop against real sockets: serving,
//! keep-alive, pipelining, slow-client eviction, and 503 shedding.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sweb_http::{Request, Response};
use sweb_reactor::{App, ReactorConfig, ReactorHandle};

/// Minimal app: answers with the request target, counts every hook.
#[derive(Default)]
struct EchoApp {
    served: AtomicUsize,
    evicted: AtomicUsize,
    shed: AtomicUsize,
    bad: AtomicUsize,
    open: AtomicUsize,
    closed: AtomicUsize,
}

impl App for EchoApp {
    fn respond(&self, _peer: &str, req: &Request, body: &[u8]) -> Response {
        self.served.fetch_add(1, Ordering::SeqCst);
        Response::ok(format!("target={} body={}", req.target, body.len()), "text/plain")
    }
    fn on_conn_open(&self) {
        self.open.fetch_add(1, Ordering::SeqCst);
    }
    fn on_conn_close(&self) {
        self.closed.fetch_add(1, Ordering::SeqCst);
    }
    fn on_evict(&self) {
        self.evicted.fetch_add(1, Ordering::SeqCst);
    }
    fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::SeqCst);
    }
    fn on_bad_request(&self) {
        self.bad.fetch_add(1, Ordering::SeqCst);
    }
}

struct TestServer {
    app: Arc<EchoApp>,
    handle: Option<ReactorHandle>,
    shutdown: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
}

impl TestServer {
    fn start(cfg: ReactorConfig) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let app = Arc::new(EchoApp::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = sweb_reactor::spawn(
            listener,
            Arc::clone(&app) as Arc<dyn App>,
            cfg,
            Arc::clone(&shutdown),
        )
        .unwrap();
        let addr = handle.addr;
        TestServer { app, handle: Some(handle), shutdown, addr }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    }

    /// One full HTTP/1.0 exchange: write `raw`, read to EOF.
    fn exchange(&self, raw: &[u8]) -> String {
        let mut s = self.connect();
        s.write_all(raw).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().unwrap();
        }
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn serves_a_simple_get() {
    let srv = TestServer::start(ReactorConfig::default());
    let reply = srv.exchange(b"GET /hello HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
    assert!(reply.contains("target=/hello"), "{reply}");
    assert_eq!(srv.app.served.load(Ordering::SeqCst), 1);
}

#[test]
fn serves_post_bodies_and_rejects_missing_length() {
    let srv = TestServer::start(ReactorConfig::default());
    let reply = srv.exchange(b"POST /cgi HTTP/1.0\r\nContent-Length: 4\r\n\r\nabcd");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
    assert!(reply.contains("body=4"), "{reply}");
    let reply = srv.exchange(b"POST /cgi HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 400"), "{reply}");
    assert_eq!(srv.app.bad.load(Ordering::SeqCst), 1);
}

#[test]
fn malformed_request_gets_400_and_close() {
    let srv = TestServer::start(ReactorConfig::default());
    let reply = srv.exchange(b"GET nopath HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 400"), "{reply}");
    assert_eq!(srv.app.bad.load(Ordering::SeqCst), 1);
}

#[test]
fn keepalive_reuses_the_connection_and_pipelines() {
    let srv = TestServer::start(ReactorConfig::default());
    let mut s = srv.connect();
    // Two pipelined keep-alive requests in a single write.
    s.write_all(
        b"GET /a HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n\
          GET /b HTTP/1.0\r\n\r\n",
    )
    .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(out.contains("target=/a"), "{out}");
    assert!(out.contains("target=/b"), "{out}");
    assert_eq!(out.matches("HTTP/1.0 200").count(), 2, "{out}");
    // One connection carried both requests.
    assert_eq!(srv.app.open.load(Ordering::SeqCst), 1);
    assert_eq!(srv.app.served.load(Ordering::SeqCst), 2);
}

#[test]
fn slow_client_is_evicted_without_stalling_others() {
    let cfg = ReactorConfig {
        read_timeout: Duration::from_millis(250),
        timer_tick_ms: 10,
        ..ReactorConfig::default()
    };
    let srv = TestServer::start(cfg);

    // The slow client sends half a request line and then goes silent.
    let mut slow = srv.connect();
    slow.write_all(b"GET /never-fin").unwrap();

    // Healthy clients keep being served the whole time.
    let t0 = Instant::now();
    let mut healthy_rounds = 0;
    while t0.elapsed() < Duration::from_millis(400) {
        let reply = srv.exchange(b"GET /healthy HTTP/1.0\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.0 200"), "healthy request failed: {reply}");
        healthy_rounds += 1;
    }
    assert!(healthy_rounds >= 3, "healthy clients stalled: {healthy_rounds} rounds");

    // The wheel must have evicted the slow client by now: its socket
    // reads EOF and the eviction counter moved.
    assert!(
        wait_until(Duration::from_secs(2), || srv.app.evicted.load(Ordering::SeqCst) >= 1),
        "slow client never evicted"
    );
    let mut buf = [0u8; 64];
    let n = slow.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "expected EOF on the evicted connection");
    // The slow client never completed a request, so nothing was served
    // on its behalf.
    assert_eq!(srv.app.bad.load(Ordering::SeqCst), 0);
}

#[test]
fn connections_beyond_the_cap_are_shed_with_503() {
    let cfg = ReactorConfig { max_conns: 2, ..ReactorConfig::default() };
    let srv = TestServer::start(cfg);

    // Two idle connections fill the admission cap.
    let _a = srv.connect();
    let _b = srv.connect();
    assert!(
        wait_until(Duration::from_secs(2), || srv.app.open.load(Ordering::SeqCst) == 2),
        "first two connections not tracked"
    );

    // The third is refused with 503 and closed.
    let mut c = srv.connect();
    let mut out = String::new();
    let _ = c.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.0 503"), "expected shed, got: {out:?}");
    assert_eq!(srv.app.shed.load(Ordering::SeqCst), 1);

    // Dropping one admitted connection frees a slot for new work.
    drop(_a);
    assert!(
        wait_until(Duration::from_secs(2), || srv.app.closed.load(Ordering::SeqCst) >= 1),
        "freed slot never noticed"
    );
    let reply = srv.exchange(b"GET /after HTTP/1.0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.0 200"), "{reply}");
}

#[test]
fn clean_shutdown_closes_open_connections() {
    let srv = TestServer::start(ReactorConfig::default());
    let mut idle = srv.connect();
    assert!(wait_until(Duration::from_secs(2), || srv.app.open.load(Ordering::SeqCst) == 1));
    drop(srv); // flags shutdown and joins the loop
    let mut buf = [0u8; 8];
    let n = idle.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "open connection must be closed on shutdown");
}
