//! Backend conformance suite: the same contract assertions run against
//! every compiled [`Poller`] backend (poll, epoll, io_uring), so the
//! completion-based backend cannot drift from the readiness ones. Each
//! case opens the backend with [`Poller::strict`] — no silent fallback —
//! and skips (with a note) only when the kernel genuinely lacks it.
//!
//! Contract under test (see `sys.rs` module docs):
//! * `register`/`modify`/`deregister` change which events arrive;
//! * delivery is level-triggered: un-drained readiness is re-delivered;
//! * `wait(_, t)` blocks at most ~`t` ms for `t > 0`, never blocks for
//!   `t == 0`, and spurious empty returns are allowed — so every
//!   positive assertion loops until a deadline rather than trusting one
//!   wake-up.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use sweb_reactor::sys::{Event, Interest, Poller};
use sweb_reactor::IoBackend;

/// Backends this build can open. `strict` means a missing backend is a
/// skip (reported), never a silent downgrade.
fn backends() -> Vec<IoBackend> {
    #[cfg(target_os = "linux")]
    {
        vec![IoBackend::Poll, IoBackend::Epoll, IoBackend::Uring]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![IoBackend::Poll]
    }
}

fn for_each_backend(test: impl Fn(Poller)) {
    let mut ran = 0;
    for b in backends() {
        match Poller::strict(b) {
            Ok(p) => {
                println!("conformance: running against {}", p.backend());
                test(p);
                ran += 1;
            }
            Err(e) => eprintln!("conformance: skipping {}: {e}", b.name()),
        }
    }
    assert!(ran >= 1, "no backend available at all");
}

/// Wait until `pred` matches an event or the deadline passes; panics on
/// timeout. Tolerates spurious wake-ups and empty returns.
fn wait_for(poller: &mut Poller, events: &mut Vec<Event>, what: &str, pred: impl Fn(&Event) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        poller.wait(events, 50).unwrap();
        if events.iter().any(&pred) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
    }
}

fn pair(listener: &TcpListener) -> (TcpStream, TcpStream) {
    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();
    (client, server)
}

#[test]
fn register_delivers_readability() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 3, Interest::READ).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        wait_for(&mut poller, &mut events, "readable", |e| e.token == 3 && e.readable);
    });
}

#[test]
fn rearm_redelivers_undrained_readiness() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, mut server) = pair(&listener);
        poller.register(server.as_raw_fd(), 3, Interest::READ).unwrap();
        client.write_all(b"abc").unwrap();
        let mut events = Vec::new();
        // The level-triggered guarantee the reactor actually relies on:
        // readiness that exists when interest is (re-)armed is delivered,
        // even if the bytes arrived long before. Deliberately do NOT
        // drain the socket between rounds; each interest transition must
        // re-surface it (epoll/poll natively, io_uring via its arm-time
        // readiness check).
        for round in 0..3 {
            wait_for(&mut poller, &mut events, "repeat readable", |e| {
                e.token == 3 && e.readable
            });
            if round < 2 {
                poller.modify(server.as_raw_fd(), 3, Interest::NONE).unwrap();
                poller.modify(server.as_raw_fd(), 3, Interest::READ).unwrap();
            }
        }
        // After draining, readability stops (modulo one benign spurious
        // wake-up per the contract — so allow the first wait to lie).
        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(n, 3);
        poller.wait(&mut events, 20).unwrap();
        poller.wait(&mut events, 20).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 3 && e.readable),
            "drained socket still readable on {}: {events:?}",
            poller.backend()
        );
    });
}

#[test]
fn modify_switches_interest() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 5, Interest::READ).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        wait_for(&mut poller, &mut events, "readable", |e| e.token == 5 && e.readable);
        // WRITE interest on an idle socket fires immediately; the
        // un-drained READ must stop arriving once interest moves away.
        poller.modify(server.as_raw_fd(), 5, Interest::WRITE).unwrap();
        wait_for(&mut poller, &mut events, "writable", |e| e.token == 5 && e.writable);
        // NONE: nothing (but errors) may arrive.
        poller.modify(server.as_raw_fd(), 5, Interest::NONE).unwrap();
        poller.wait(&mut events, 20).unwrap();
        poller.wait(&mut events, 20).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 5 && (e.readable || e.writable)),
            "NONE interest still delivers I/O events on {}: {events:?}",
            poller.backend()
        );
    });
}

#[test]
fn deregister_stops_delivery() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 9, Interest::READ).unwrap();
        poller.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        // A few generous waits: nothing for token 9 may ever surface.
        for _ in 0..3 {
            poller.wait(&mut events, 20).unwrap();
            assert!(
                !events.iter().any(|e| e.token == 9),
                "deregistered fd still delivers on {}: {events:?}",
                poller.backend()
            );
        }
    });
}

#[test]
fn zero_timeout_never_blocks() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 4, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing ready: must return promptly and empty.
        let t0 = Instant::now();
        for _ in 0..10 {
            let n = poller.wait(&mut events, 0).unwrap();
            assert_eq!(n, 0, "phantom events on {}: {events:?}", poller.backend());
        }
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "timeout_ms = 0 blocked on {}",
            poller.backend()
        );
        // Something ready: a non-blocking poll loop must surface it (the
        // kernel may need a moment to post the readiness, hence the loop
        // — but every iteration stays non-blocking).
        client.write_all(b"x").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let before = Instant::now();
            poller.wait(&mut events, 0).unwrap();
            assert!(
                before.elapsed() < Duration::from_millis(250),
                "timeout_ms = 0 blocked on {}",
                poller.backend()
            );
            if events.iter().any(|e| e.token == 4 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readiness never arrived via zero-timeout");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
}

#[test]
fn positive_timeout_is_bounded() {
    for_each_backend(|mut poller| {
        // Nothing registered at all: wait(50) must come back near 50 ms,
        // not hang.
        let mut events = Vec::new();
        let t0 = Instant::now();
        poller.wait(&mut events, 50).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "bounded wait overslept on {}",
            poller.backend()
        );
        assert!(events.is_empty());
    });
}

#[test]
fn peer_close_surfaces_as_event() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 6, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        // HUP may arrive as error or as readable-with-EOF; both lead the
        // reactor to read 0 and close. It must arrive as *something*.
        wait_for(&mut poller, &mut events, "hangup", |e| {
            e.token == 6 && (e.error || e.readable)
        });
    });
}
