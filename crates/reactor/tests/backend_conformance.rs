//! Backend conformance suite: the same contract assertions run against
//! every compiled [`Poller`] backend (poll, epoll, io_uring), so the
//! completion-based backend cannot drift from the readiness ones. Each
//! case opens the backend with [`Poller::strict`] — no silent fallback —
//! and skips (with a note) only when the kernel genuinely lacks it.
//!
//! Contract under test (see `sys.rs` module docs):
//! * `register`/`modify`/`deregister` change which events arrive;
//! * delivery is level-triggered: un-drained readiness is re-delivered;
//! * `wait(_, t)` blocks at most ~`t` ms for `t > 0`, never blocks for
//!   `t == 0`, and spurious empty returns are allowed — so every
//!   positive assertion loops until a deadline rather than trusting one
//!   wake-up.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use sweb_reactor::sys::{Event, Interest, Poller};
use sweb_reactor::IoBackend;

/// Backends this build can open. `strict` means a missing backend is a
/// skip (reported), never a silent downgrade.
fn backends() -> Vec<IoBackend> {
    #[cfg(target_os = "linux")]
    {
        vec![IoBackend::Poll, IoBackend::Epoll, IoBackend::Uring]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![IoBackend::Poll]
    }
}

fn for_each_backend(test: impl Fn(Poller)) {
    let mut ran = 0;
    for b in backends() {
        match Poller::strict(b) {
            Ok(p) => {
                println!("conformance: running against {}", p.backend());
                test(p);
                ran += 1;
            }
            Err(e) => eprintln!("conformance: skipping {}: {e}", b.name()),
        }
    }
    assert!(ran >= 1, "no backend available at all");
}

/// Wait until `pred` matches an event or the deadline passes; panics on
/// timeout. Tolerates spurious wake-ups and empty returns.
fn wait_for(poller: &mut Poller, events: &mut Vec<Event>, what: &str, pred: impl Fn(&Event) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        poller.wait(events, 50).unwrap();
        if events.iter().any(&pred) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
    }
}

fn pair(listener: &TcpListener) -> (TcpStream, TcpStream) {
    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (server, _) = listener.accept().unwrap();
    server.set_nonblocking(true).unwrap();
    (client, server)
}

#[test]
fn register_delivers_readability() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 3, Interest::READ).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        wait_for(&mut poller, &mut events, "readable", |e| e.token == 3 && e.readable);
    });
}

#[test]
fn rearm_redelivers_undrained_readiness() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, mut server) = pair(&listener);
        poller.register(server.as_raw_fd(), 3, Interest::READ).unwrap();
        client.write_all(b"abc").unwrap();
        let mut events = Vec::new();
        // The level-triggered guarantee the reactor actually relies on:
        // readiness that exists when interest is (re-)armed is delivered,
        // even if the bytes arrived long before. Deliberately do NOT
        // drain the socket between rounds; each interest transition must
        // re-surface it (epoll/poll natively, io_uring via its arm-time
        // readiness check).
        for round in 0..3 {
            wait_for(&mut poller, &mut events, "repeat readable", |e| {
                e.token == 3 && e.readable
            });
            if round < 2 {
                poller.modify(server.as_raw_fd(), 3, Interest::NONE).unwrap();
                poller.modify(server.as_raw_fd(), 3, Interest::READ).unwrap();
            }
        }
        // After draining, readability stops (modulo one benign spurious
        // wake-up per the contract — so allow the first wait to lie).
        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(n, 3);
        poller.wait(&mut events, 20).unwrap();
        poller.wait(&mut events, 20).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 3 && e.readable),
            "drained socket still readable on {}: {events:?}",
            poller.backend()
        );
    });
}

#[test]
fn modify_switches_interest() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 5, Interest::READ).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        wait_for(&mut poller, &mut events, "readable", |e| e.token == 5 && e.readable);
        // WRITE interest on an idle socket fires immediately; the
        // un-drained READ must stop arriving once interest moves away.
        poller.modify(server.as_raw_fd(), 5, Interest::WRITE).unwrap();
        wait_for(&mut poller, &mut events, "writable", |e| e.token == 5 && e.writable);
        // NONE: nothing (but errors) may arrive.
        poller.modify(server.as_raw_fd(), 5, Interest::NONE).unwrap();
        poller.wait(&mut events, 20).unwrap();
        poller.wait(&mut events, 20).unwrap();
        assert!(
            !events.iter().any(|e| e.token == 5 && (e.readable || e.writable)),
            "NONE interest still delivers I/O events on {}: {events:?}",
            poller.backend()
        );
    });
}

#[test]
fn deregister_stops_delivery() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 9, Interest::READ).unwrap();
        poller.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        // A few generous waits: nothing for token 9 may ever surface.
        for _ in 0..3 {
            poller.wait(&mut events, 20).unwrap();
            assert!(
                !events.iter().any(|e| e.token == 9),
                "deregistered fd still delivers on {}: {events:?}",
                poller.backend()
            );
        }
    });
}

#[test]
fn zero_timeout_never_blocks() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (mut client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 4, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing ready: must return promptly and empty.
        let t0 = Instant::now();
        for _ in 0..10 {
            let n = poller.wait(&mut events, 0).unwrap();
            assert_eq!(n, 0, "phantom events on {}: {events:?}", poller.backend());
        }
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "timeout_ms = 0 blocked on {}",
            poller.backend()
        );
        // Something ready: a non-blocking poll loop must surface it (the
        // kernel may need a moment to post the readiness, hence the loop
        // — but every iteration stays non-blocking).
        client.write_all(b"x").unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let before = Instant::now();
            poller.wait(&mut events, 0).unwrap();
            assert!(
                before.elapsed() < Duration::from_millis(250),
                "timeout_ms = 0 blocked on {}",
                poller.backend()
            );
            if events.iter().any(|e| e.token == 4 && e.readable) {
                break;
            }
            assert!(Instant::now() < deadline, "readiness never arrived via zero-timeout");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
}

#[test]
fn positive_timeout_is_bounded() {
    for_each_backend(|mut poller| {
        // Nothing registered at all: wait(50) must come back near 50 ms,
        // not hang.
        let mut events = Vec::new();
        let t0 = Instant::now();
        poller.wait(&mut events, 50).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "bounded wait overslept on {}",
            poller.backend()
        );
        assert!(events.is_empty());
    });
}

/// Serializes the `SWEB_URING_*` env-flag tests: env vars are
/// process-global and the harness runs tests threaded.
#[cfg(target_os = "linux")]
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Open a strict-uring poller with an explicit registered-pool budget;
/// `None` means this kernel can't run the test (skip, not fail).
#[cfg(target_os = "linux")]
fn uring_with_pool(pool_bytes: usize, what: &str) -> Option<Poller> {
    match Poller::with_backend_and_pool(IoBackend::Uring, pool_bytes) {
        Ok(p) if p.backend() == "uring" => Some(p),
        Ok(_) | Err(_) => {
            eprintln!("conformance: skipping {what}: kernel lacks io_uring");
            None
        }
    }
}

/// Queue one response per stream via the uring queued-write path
/// (`head` bytes then `body` bytes, exactly as the reactor hands over a
/// header + cached document), then drive the ring until every client
/// received its stream. Returns the received streams for byte-identity
/// assertions against `head ++ body`.
#[cfg(target_os = "linux")]
fn pump_queued_writes(poller: &mut Poller, legs: &[(Vec<u8>, bytes::Bytes)]) -> Vec<Vec<u8>> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for i in 0..legs.len() {
        let (client, server) = pair(&listener);
        client.set_nonblocking(true).unwrap();
        // No poll armed: the queued-write path owns the fd until the
        // response drains (matching how the reactor hands over).
        poller.register(server.as_raw_fd(), i, Interest::NONE).unwrap();
        clients.push(client);
        servers.push(server);
    }
    for (i, (h, b)) in legs.iter().enumerate() {
        let mut head = h.clone();
        let mut body = b.clone();
        assert!(
            poller.queue_writev(servers[i].as_raw_fd(), i, &mut head, &mut body, false),
            "queue_writev refused stream {i}"
        );
    }
    let totals: Vec<usize> = legs.iter().map(|(h, b)| h.len() + b.len()).collect();
    let mut got: Vec<Vec<u8>> = vec![Vec::new(); legs.len()];
    let mut events = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while got.iter().zip(&totals).any(|(g, t)| g.len() < *t) {
        poller.wait(&mut events, 20).unwrap();
        for (i, c) in clients.iter_mut().enumerate() {
            let mut buf = [0u8; 16 * 1024];
            loop {
                match c.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => got[i].extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("client {i} read failed: {e}"),
                }
            }
        }
        assert!(Instant::now() < deadline, "queued writes never drained");
    }
    got
}

/// `head ++ body` for comparing a received stream.
#[cfg(target_os = "linux")]
fn expected(leg: &(Vec<u8>, bytes::Bytes)) -> Vec<u8> {
    let mut v = leg.0.clone();
    v.extend_from_slice(&leg.1);
    v
}

/// A registered pool of exactly one staging slot: the first queued
/// response stages as `WRITE_FIXED`, the rest find the pool exhausted
/// and must fall back to plain `WRITEV` — with every byte intact.
#[test]
#[cfg(target_os = "linux")]
fn tiny_pool_exhaustion_falls_back_to_writev() {
    let _guard = ENV_LOCK.lock().unwrap();
    let Some(mut poller) = uring_with_pool(16 * 1024, "tiny-pool exhaustion") else {
        return;
    };
    // Four 8 KiB responses: each fits the slot alone, no two share it,
    // and all four are queued before the ring gets a chance to complete
    // the first — so exhaustion is guaranteed, not racy.
    let legs: Vec<(Vec<u8>, bytes::Bytes)> = (0..4)
        .map(|i| (vec![b'a' + i as u8; 4 * 1024], bytes::Bytes::from(vec![b'A' + i as u8; 4 * 1024])))
        .collect();
    let got = pump_queued_writes(&mut poller, &legs);
    for (i, (g, leg)) in got.iter().zip(&legs).enumerate() {
        assert_eq!(*g, expected(leg), "stream {i} bytes diverged");
    }
    let stats = poller.take_stats();
    assert!(stats.write_fixed >= 1, "the free slot was never used: {stats:?}");
    assert!(stats.buf_pool_exhausted >= 1, "exhaustion never fell back: {stats:?}");
}

/// `SWEB_URING_NO_BUFS=1` must disable the registered pool outright —
/// zero `WRITE_FIXED` submissions — while responses stay byte-identical.
#[test]
#[cfg(target_os = "linux")]
fn no_bufs_env_serves_identical_bytes_without_write_fixed() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SWEB_URING_NO_BUFS", "1");
    let result = uring_with_pool(2 << 20, "NO_BUFS fallback").map(|mut poller| {
        let legs: Vec<(Vec<u8>, bytes::Bytes)> = (0..3)
            .map(|i| (vec![b'x' + i as u8; 2 * 1024], bytes::Bytes::from(vec![b'X' + i as u8; 2 * 1024])))
            .collect();
        let got = pump_queued_writes(&mut poller, &legs);
        (got, legs, poller.take_stats())
    });
    std::env::remove_var("SWEB_URING_NO_BUFS");
    let Some((got, legs, stats)) = result else { return };
    for (i, (g, leg)) in got.iter().zip(&legs).enumerate() {
        assert_eq!(*g, expected(leg), "stream {i} bytes diverged under SWEB_URING_NO_BUFS");
    }
    assert_eq!(stats.write_fixed, 0, "opt-out still staged into the pool: {stats:?}");
    assert_eq!(stats.buf_pool_exhausted, 0, "no pool, so nothing to exhaust: {stats:?}");
}

/// `SWEB_URING_NO_ZC=1` models a kernel whose probe lacks `SEND_ZC`:
/// large bodies must take the plain `WRITEV` path (with short-write
/// resubmission) and still arrive byte-identical.
#[test]
#[cfg(target_os = "linux")]
fn no_zc_probe_fallback_keeps_large_bodies_identical() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("SWEB_URING_NO_ZC", "1");
    let result = uring_with_pool(2 << 20, "NO_ZC fallback").map(|mut poller| {
        // A 96 KiB *body*: past ZC_MIN_BODY (64 KiB) and past the
        // staging-slot size, so without the opt-out this is exactly the
        // shape that rides SEND_ZC.
        let mut payload = vec![0u8; 96 * 1024];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let legs = vec![(b"HTTP/1.0 200 OK\r\n\r\n".to_vec(), bytes::Bytes::from(payload))];
        let got = pump_queued_writes(&mut poller, &legs);
        (got, legs, poller.take_stats())
    });
    std::env::remove_var("SWEB_URING_NO_ZC");
    let Some((got, legs, stats)) = result else { return };
    assert_eq!(got[0], expected(&legs[0]), "large body diverged under SWEB_URING_NO_ZC");
    assert_eq!(stats.send_zc, 0, "opt-out still sent zero-copy: {stats:?}");
}

#[test]
fn peer_close_surfaces_as_event() {
    for_each_backend(|mut poller| {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let (client, server) = pair(&listener);
        poller.register(server.as_raw_fd(), 6, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        // HUP may arrive as error or as readable-with-EOF; both lead the
        // reactor to read 0 and close. It must arrive as *something*.
        wait_for(&mut poller, &mut events, "hangup", |e| {
            e.token == 6 && (e.error || e.readable)
        });
    });
}
