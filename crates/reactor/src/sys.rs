//! Readiness polling over raw OS interfaces.
//!
//! Three interchangeable backends behind [`Poller`]:
//!
//! * **io_uring** (Linux 5.11+): completion-based, batched — one
//!   `io_uring_enter` per loop tick (often zero), multishot accept,
//!   queued writes with linked SQE chains (see [`uring`]). Selected via
//!   `--io-backend uring` / `SWEB_IO_BACKEND=uring` (or `auto`), with a
//!   startup probe falling back to epoll on unsupporting kernels;
//! * **epoll** (Linux): O(1) readiness delivery, the default backend;
//! * **poll(2)** (portable POSIX): linear scan over the fd set, used on
//!   non-Linux targets and force-selectable via `SWEB_REACTOR_POLL=1` so
//!   tests exercise both code paths on one machine.
//!
//! All are used level-triggered: the loop re-arms interest explicitly
//! when a connection changes state, which keeps the state machine simple
//! (no starvation bookkeeping for edge-triggered wakeups). The io_uring
//! backend preserves this contract because `POLL_ADD` performs a
//! readiness check at arm time; spurious wakeups (allowed for every
//! backend) are bounded at one per interest transition.
//!
//! Every backend counts its kernel crossings into [`IoStats`]
//! (syscalls made, SQEs/CQEs moved, syscalls the completion model
//! avoided), drained per tick via [`Poller::take_stats`] so telemetry
//! can prove the batching claim instead of asserting it.
//!
//! The FFI declarations are hand-written because this crate is
//! dependency-light by design (no `libc`): the reactor must build in the
//! same offline environment as the rest of the workspace.

use std::io;
use std::os::fd::RawFd;

#[cfg(target_os = "linux")]
pub mod uring;

/// Which I/O backend a reactor shard should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Probe io_uring at startup; fall back to epoll if unavailable.
    Auto,
    /// io_uring, falling back to epoll (with a logged warning) if the
    /// kernel does not support it.
    Uring,
    /// epoll (Linux) — the default, matching prior releases.
    #[default]
    Epoll,
    /// poll(2) — the portable fallback, mostly for tests.
    Poll,
}

impl IoBackend {
    /// Parse a backend name (`uring`/`epoll`/`auto`/`poll`).
    pub fn parse(s: &str) -> Option<IoBackend> {
        match s {
            "uring" | "io_uring" => Some(IoBackend::Uring),
            "epoll" => Some(IoBackend::Epoll),
            "auto" => Some(IoBackend::Auto),
            "poll" => Some(IoBackend::Poll),
            _ => None,
        }
    }

    /// Backend from the environment: `SWEB_IO_BACKEND` if set (unknown
    /// values fall back to the default), else the legacy
    /// `SWEB_REACTOR_POLL=1` switch, else epoll.
    pub fn from_env() -> IoBackend {
        if let Some(v) = std::env::var_os("SWEB_IO_BACKEND") {
            if let Some(b) = v.to_str().and_then(IoBackend::parse) {
                return b;
            }
        }
        if std::env::var_os("SWEB_REACTOR_POLL").is_some_and(|v| v == "1") {
            return IoBackend::Poll;
        }
        IoBackend::Epoll
    }

    /// The requested backend's name (what `Poller::backend` reports
    /// once a concrete backend is running; `Auto` resolves at open).
    pub fn name(&self) -> &'static str {
        match self {
            IoBackend::Auto => "auto",
            IoBackend::Uring => "uring",
            IoBackend::Epoll => "epoll",
            IoBackend::Poll => "poll",
        }
    }
}

/// Kernel-crossing counters, drained per loop tick via
/// [`Poller::take_stats`].
///
/// `syscalls` counts actual kernel entries (`epoll_wait`/`epoll_ctl`,
/// `poll`, `io_uring_enter`). `syscalls_saved` counts operations that a
/// readiness backend would have paid a dedicated syscall for but the
/// active backend absorbed (registrations folded into SQEs, accepts and
/// writes completed via CQEs, waits satisfied from the completion ring
/// without entering the kernel). SQE/CQE counts are zero for the
/// readiness backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Syscalls actually made.
    pub syscalls: u64,
    /// io_uring submission entries queued.
    pub sqe_submitted: u64,
    /// io_uring completion entries reaped.
    pub cqe_completed: u64,
    /// Dedicated syscalls avoided by the completion model.
    pub syscalls_saved: u64,
    /// Responses transmitted as `WRITE_FIXED` from the registered
    /// staging pool (io_uring only).
    pub write_fixed: u64,
    /// Responses that wanted a staging slot but found the pool
    /// exhausted and fell back to plain `WRITEV`.
    pub buf_pool_exhausted: u64,
    /// `SEND_ZC` operations submitted for large bodies.
    pub send_zc: u64,
    /// Completed zero-copy body sends — each one is a kernel
    /// skb-copy of the payload avoided versus plain `write`/`sendfile`.
    pub zc_copies_avoided: u64,
    /// SQEs that found the submission queue full and waited in the
    /// userspace backlog (SQ-pressure signal; see uring docs on the
    /// p99 investigation).
    pub sqe_backlogged: u64,
}

impl IoStats {
    /// True when nothing was counted since the last drain.
    pub fn is_zero(&self) -> bool {
        *self == IoStats::default()
    }

    /// Accumulate another sample into this one.
    pub fn add(&mut self, other: &IoStats) {
        self.syscalls += other.syscalls;
        self.sqe_submitted += other.sqe_submitted;
        self.cqe_completed += other.cqe_completed;
        self.syscalls_saved += other.syscalls_saved;
        self.write_fixed += other.write_fixed;
        self.buf_pool_exhausted += other.buf_pool_exhausted;
        self.send_zc += other.send_zc;
        self.zc_copies_avoided += other.zc_copies_avoided;
        self.sqe_backlogged += other.sqe_backlogged;
    }
}

/// Which readiness events a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// No events — parked (e.g. while a worker owns the request).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One delivered event: a readiness edge, or (io_uring only) a
/// completion carrying its payload directly.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// Readable (includes peer-hangup, so reads observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd (the owner should close it).
    pub error: bool,
    /// io_uring multishot accept: the already-accepted connection fd
    /// (the listener needs no `accept(2)` call). Always `None` on the
    /// readiness backends.
    pub accepted: Option<RawFd>,
    /// io_uring queued write: bytes written by a completed `WRITEV` SQE
    /// (negative = the op failed with that `-errno`). Always `None` on
    /// the readiness backends.
    pub wrote: Option<i32>,
}

impl Event {
    /// A plain readiness event (what the epoll/poll backends deliver).
    pub fn ready(token: usize, readable: bool, writable: bool, error: bool) -> Event {
        Event { token, readable, writable, error, accepted: None, wrote: None }
    }
}

/// A poller over one of the compiled backends.
pub enum Poller {
    /// Linux io_uring (completion-based). Boxed: the ring bookkeeping
    /// dwarfs the readiness backends and the enum is stored inline in
    /// every shard.
    #[cfg(target_os = "linux")]
    Uring(Box<uring::UringPoller>),
    /// Linux epoll.
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollPoller),
    /// Portable poll(2).
    Poll(pollfd::PollPoller),
}

impl Poller {
    /// Open a poller for the backend named by the environment
    /// ([`IoBackend::from_env`]): epoll on Linux unless overridden,
    /// poll(2) otherwise.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(IoBackend::from_env())
    }

    /// Open a poller for `backend`. `Uring`/`Auto` probe io_uring and
    /// fall back to epoll when the kernel lacks support — an explicit
    /// `uring` request logs the downgrade to stderr, `auto` is silent.
    pub fn with_backend(backend: IoBackend) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        return Poller::with_backend_and_pool(backend, uring::DEFAULT_BUF_POOL);
        #[cfg(not(target_os = "linux"))]
        {
            let _ = backend;
            Ok(Poller::Poll(pollfd::PollPoller::new()))
        }
    }

    /// [`Poller::with_backend`] with an explicit registered-buffer pool
    /// budget for the io_uring backend (bytes; ignored by the readiness
    /// backends). Shards size this off the file cache's hot-segment
    /// share so the staging pool tracks the working set it stages.
    #[cfg(target_os = "linux")]
    pub fn with_backend_and_pool(backend: IoBackend, pool_bytes: usize) -> io::Result<Poller> {
        match backend {
            IoBackend::Uring | IoBackend::Auto => {
                match uring::UringPoller::with_pool_bytes(pool_bytes) {
                    Ok(p) => Ok(Poller::Uring(Box::new(p))),
                    Err(e) => {
                        if backend == IoBackend::Uring {
                            eprintln!(
                                "sweb-reactor: io_uring unavailable ({e}); falling back to epoll"
                            );
                        }
                        Ok(Poller::Epoll(epoll::EpollPoller::new()?))
                    }
                }
            }
            IoBackend::Epoll => Ok(Poller::Epoll(epoll::EpollPoller::new()?)),
            IoBackend::Poll => Ok(Poller::Poll(pollfd::PollPoller::new())),
        }
    }

    /// Open exactly the requested backend — no fallback. Errors when
    /// the backend is unsupported on this kernel/platform. Used by the
    /// conformance tests so a silent fallback can't mask a missing
    /// backend.
    pub fn strict(backend: IoBackend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            IoBackend::Uring | IoBackend::Auto => {
                Ok(Poller::Uring(Box::new(uring::UringPoller::new()?)))
            }
            #[cfg(target_os = "linux")]
            IoBackend::Epoll => Ok(Poller::Epoll(epoll::EpollPoller::new()?)),
            IoBackend::Poll => Ok(Poller::Poll(pollfd::PollPoller::new())),
            #[cfg(not(target_os = "linux"))]
            _ => Err(io::Error::new(io::ErrorKind::Unsupported, "backend requires Linux")),
        }
    }

    /// Name of the active backend (surfaced in status output).
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(_) => "uring",
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.register(fd, token, interest),
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Start watching a listener. On io_uring this arms a multishot
    /// accept whose completions carry the accepted fd in
    /// [`Event::accepted`]; readiness backends treat it as a plain READ
    /// registration (the caller keeps its `accept(2)` loop for them).
    pub fn register_accept(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.register_accept(fd, token),
            _ => self.register(fd, token, Interest::READ),
        }
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.modify(fd, token, interest),
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.modify(fd, token, interest),
            Poller::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stop watching `fd`. Must be called before the fd is closed: the
    /// poll(2) backend keeps its own fd list, and the io_uring backend
    /// must cancel in-flight SQEs targeting the fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.deregister(fd),
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// True when [`Poller::queue_writev`] can take buffered responses
    /// (io_uring with queued writes enabled).
    pub fn supports_queued_write(&self) -> bool {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.supports_queued_write(),
            _ => false,
        }
    }

    /// True when large queued bodies go out as `SEND_ZC` (io_uring on a
    /// kernel that probes the opcode, not opted out). Callers use this
    /// to prefer materializing a file body over the sendfile loop: the
    /// zero-copy send rides the ring, sendfile cannot.
    pub fn supports_send_zc(&self) -> bool {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.supports_send_zc(),
            _ => false,
        }
    }

    /// Submit a whole buffered response for completion-based transmit
    /// (io_uring only; see [`uring::UringPoller::queue_writev`]). On
    /// success the buffers are taken (left empty); on refusal they are
    /// untouched and the caller must use the readiness + `writev(2)`
    /// path instead.
    pub fn queue_writev(
        &mut self,
        fd: RawFd,
        token: usize,
        head: &mut Vec<u8>,
        body: &mut bytes::Bytes,
        link_read: bool,
    ) -> bool {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.queue_writev(fd, token, head, body, link_read),
            _ => {
                let _ = (fd, token, head, body, link_read);
                false
            }
        }
    }

    /// Drain the kernel-crossing counters accumulated since the last
    /// call (see [`IoStats`]).
    pub fn take_stats(&mut self) -> IoStats {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.take_stats(),
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.take_stats(),
            Poller::Poll(p) => p.take_stats(),
        }
    }

    /// Synchronously release every kernel-held resource before drop.
    ///
    /// Readiness backends need nothing (closing an fd detaches it at
    /// once), so this is a no-op there. io_uring holds file references
    /// in the kernel — a multishot accept pins its listener, the fixed
    /// table pins connection fds — and plain `close(ring_fd)` releases
    /// them *asynchronously*, so a listener port can linger in `LISTEN`
    /// state briefly after the owning thread exits. Callers that rebind
    /// addresses right after stopping a shard (graceful stop → revive)
    /// need this fence; the reactor loop calls it during drain.
    pub fn shutdown(&mut self) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.shutdown(),
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => {}
            Poller::Poll(_) => {}
        }
    }

    /// Wait for events, appending them to `events` (which is cleared
    /// first). Returns the number of events delivered.
    ///
    /// Timeout contract, identical across backends:
    /// * `timeout_ms > 0` — block up to that many milliseconds;
    /// * `timeout_ms == 0` — non-blocking: deliver whatever is ready
    ///   right now (io_uring still submits queued SQEs) and return
    ///   immediately;
    /// * `timeout_ms < 0` — block until at least one event arrives.
    ///
    /// Every backend may return early with zero events (EINTR, stale
    /// completions); callers must treat an empty return as a timeout
    /// tick, not end-of-stream.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Uring(p) => p.wait(events, timeout_ms),
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout_ms),
            Poller::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

// ------------------------------------------------------------------
// Transmit syscalls: vectored writes and in-kernel file streaming.
// ------------------------------------------------------------------

/// Whether this platform has `sendfile(2)` wired up. When false the
/// reactor materializes file bodies on a worker thread instead (the
/// blocking-fallback path).
pub const HAS_SENDFILE: bool = cfg!(target_os = "linux");

/// POSIX `struct iovec`.
#[repr(C)]
#[derive(Clone, Copy)]
struct IoVec {
    base: *const u8,
    len: usize,
}

extern "C" {
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// Transmit up to two slices with a single `writev(2)`: the serialized
/// response head and the shared body, gathered by the kernel without the
/// user-space concatenation `to_bytes` would pay. Returns bytes written
/// (which may straddle the two slices — the caller resumes from the
/// combined offset on the next readiness).
pub fn write_two(fd: RawFd, a: &[u8], b: &[u8]) -> io::Result<usize> {
    let mut iov = [IoVec { base: std::ptr::null(), len: 0 }; 2];
    let mut n = 0;
    for s in [a, b] {
        if !s.is_empty() {
            iov[n] = IoVec { base: s.as_ptr(), len: s.len() };
            n += 1;
        }
    }
    if n == 0 {
        return Ok(0);
    }
    let rc = unsafe { writev(fd, iov.as_ptr(), n as i32) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(rc as usize)
}

/// Portable two-write fallback for [`write_two`]: sequential `write(2)`
/// per slice. Same contract (combined byte count, short writes allowed);
/// one extra syscall when both slices are non-empty.
pub fn write_two_seq(fd: RawFd, a: &[u8], b: &[u8]) -> io::Result<usize> {
    let mut total = 0;
    for s in [a, b] {
        if s.is_empty() {
            continue;
        }
        let rc = unsafe { write(fd, s.as_ptr(), s.len()) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // Progress already made counts as success; the error (likely
            // EAGAIN) resurfaces on the caller's next attempt.
            if total > 0 {
                return Ok(total);
            }
            return Err(err);
        }
        total += rc as usize;
        if (rc as usize) < s.len() {
            break; // short write: the socket buffer is full
        }
    }
    Ok(total)
}

/// Stream up to `count` bytes of `in_fd` (a regular file) to `out_fd` (a
/// socket) with `sendfile(2)`, advancing `offset`. Returns bytes moved;
/// `Ok(0)` before the caller's expected end means the file was truncated
/// underneath us.
#[cfg(target_os = "linux")]
pub fn send_file(out_fd: RawFd, in_fd: RawFd, offset: &mut u64, count: usize) -> io::Result<usize> {
    extern "C" {
        fn sendfile(out_fd: i32, in_fd: i32, offset: *mut i64, count: usize) -> isize;
    }
    let mut off = *offset as i64;
    let rc = unsafe { sendfile(out_fd, in_fd, &mut off, count) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    *offset = off as u64;
    Ok(rc as usize)
}

/// Non-Linux stub: callers must gate on [`HAS_SENDFILE`] and take the
/// worker-thread fallback instead.
#[cfg(not(target_os = "linux"))]
pub fn send_file(
    _out_fd: RawFd,
    _in_fd: RawFd,
    _offset: &mut u64,
    _count: usize,
) -> io::Result<usize> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "sendfile unavailable on this platform"))
}

/// Bind a listener with `SO_REUSEADDR`, so a revived node can reclaim
/// its old address while connections it accepted before dying still sit
/// in `TIME_WAIT` (a plain `TcpListener::bind` fails with `EADDRINUSE`
/// for the staleness timeout's worth of seconds).
#[cfg(target_os = "linux")]
pub fn bind_reuseaddr(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    bind_with(addr, false)
}

/// Bind a listener with `SO_REUSEADDR` **and** `SO_REUSEPORT`, so several
/// listeners — one per reactor shard — share one port and the kernel
/// distributes incoming connections across them (hashed on the 4-tuple).
/// Every listener on the port must set the flag *before* bind, or the
/// kernel refuses the group: sharded callers bind their first listener
/// through here too, never through a plain `TcpListener::bind`.
#[cfg(target_os = "linux")]
pub fn bind_reuseport(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    bind_with(addr, true)
}

/// The kernel's `struct sockaddr_in` (IPv4).
#[cfg(target_os = "linux")]
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

#[cfg(target_os = "linux")]
fn bind_with(addr: std::net::SocketAddr, reuseport: bool) -> io::Result<std::net::TcpListener> {
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;

    let std::net::SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(io::ErrorKind::Unsupported, "IPv4 addresses only"));
    };
    let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let fail = |fd: i32| {
        let err = io::Error::last_os_error();
        unsafe { close(fd) };
        Err(err)
    };
    let one: i32 = 1;
    if unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) } < 0 {
        return fail(fd);
    }
    if reuseport && unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, 4) } < 0 {
        return fail(fd);
    }
    let sa = SockAddrIn {
        family: AF_INET as u16,
        port_be: v4.port().to_be(),
        addr_be: u32::from(*v4.ip()).to_be(),
        zero: [0; 8],
    };
    if unsafe { bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) } < 0 {
        return fail(fd);
    }
    if unsafe { listen(fd, 128) } < 0 {
        return fail(fd);
    }
    Ok(unsafe { std::net::TcpListener::from_raw_fd(fd) })
}

/// Connect to `dest` from a specific source address (port 0 =
/// ephemeral), with `SO_REUSEADDR` set on the client socket. Load
/// generators use this for client-side sharding: binding each opener
/// thread to its own `127.0.0.x` source widens the 4-tuple space past
/// the ~28k-ephemeral-ports-per-source ceiling, which is what makes
/// 10k+ (toward C10M) held connections from one box possible, and
/// spreads the server's `SO_REUSEPORT` hash across shards.
#[cfg(target_os = "linux")]
pub fn connect_from(
    dest: std::net::SocketAddr,
    source: std::net::Ipv4Addr,
) -> io::Result<std::net::TcpStream> {
    use std::os::fd::FromRawFd;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn connect(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    let std::net::SocketAddr::V4(v4) = dest else {
        return Err(io::Error::new(io::ErrorKind::Unsupported, "IPv4 addresses only"));
    };
    let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let fail = |fd: i32| {
        let err = io::Error::last_os_error();
        unsafe { close(fd) };
        Err(err)
    };
    let one: i32 = 1;
    if unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) } < 0 {
        return fail(fd);
    }
    let src = SockAddrIn {
        family: AF_INET as u16,
        port_be: 0,
        addr_be: u32::from(source).to_be(),
        zero: [0; 8],
    };
    if unsafe { bind(fd, &src, std::mem::size_of::<SockAddrIn>() as u32) } < 0 {
        return fail(fd);
    }
    let dst = SockAddrIn {
        family: AF_INET as u16,
        port_be: v4.port().to_be(),
        addr_be: u32::from(*v4.ip()).to_be(),
        zero: [0; 8],
    };
    if unsafe { connect(fd, &dst, std::mem::size_of::<SockAddrIn>() as u32) } < 0 {
        return fail(fd);
    }
    Ok(unsafe { std::net::TcpStream::from_raw_fd(fd) })
}

/// Portable fallback: ignores the requested source address.
#[cfg(not(target_os = "linux"))]
pub fn connect_from(
    dest: std::net::SocketAddr,
    _source: std::net::Ipv4Addr,
) -> io::Result<std::net::TcpStream> {
    std::net::TcpStream::connect(dest)
}

/// Portable fallback: a plain bind (no `SO_REUSEADDR`), so revival may
/// fail with `EADDRINUSE` until `TIME_WAIT` sockets clear.
#[cfg(not(target_os = "linux"))]
pub fn bind_reuseaddr(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    std::net::TcpListener::bind(addr)
}

/// Portable fallback: a plain bind. The second shard's bind then fails
/// with `EADDRINUSE`, which sharded callers detect and use to fall back
/// to the single-acceptor hand-off path.
#[cfg(not(target_os = "linux"))]
pub fn bind_reuseport(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    std::net::TcpListener::bind(addr)
}

#[cfg(target_os = "linux")]
pub mod epoll {
    //! The Linux epoll backend.

    use super::{Event, Interest, IoStats};
    use std::io;
    use std::os::fd::RawFd;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // On x86-64 the kernel ABI packs epoll_event (no padding between the
    // u32 mask and the u64 payload); other architectures use natural
    // alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An epoll instance.
    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
        stats: IoStats,
    }

    impl EpollPoller {
        /// Create the epoll instance (`EPOLL_CLOEXEC`).
        pub fn new() -> io::Result<EpollPoller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
                stats: IoStats::default(),
            })
        }

        /// Drain stats accumulated since the last call.
        pub fn take_stats(&mut self) -> IoStats {
            std::mem::take(&mut self.stats)
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.stats.syscalls += 1;
            let mut ev = EpollEvent { events: mask_of(interest), data: token as u64 };
            let arg = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, arg) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// See [`super::Poller::register`].
        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// See [`super::Poller::modify`].
        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// See [`super::Poller::deregister`].
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        /// See [`super::Poller::wait`].
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let n = loop {
                self.stats.syscalls += 1;
                let rc = unsafe {
                    epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, timeout_ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let mask = raw.events;
                let token = raw.data as usize;
                events.push(Event::ready(
                    token,
                    mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    mask & EPOLLOUT != 0,
                    mask & EPOLLERR != 0,
                ));
            }
            Ok(n)
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

pub mod pollfd {
    //! The portable poll(2) backend: a linear fd list.

    use super::{Event, Interest, IoStats};
    use std::io;
    use std::os::fd::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    fn mask_of(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    /// A poll(2) fd set. Registration order is preserved; lookups are
    /// linear, which is fine at the connection counts this server targets.
    pub struct PollPoller {
        fds: Vec<PollFd>,
        tokens: Vec<usize>,
        stats: IoStats,
    }

    impl PollPoller {
        /// Create an empty fd set.
        pub fn new() -> PollPoller {
            PollPoller { fds: Vec::new(), tokens: Vec::new(), stats: IoStats::default() }
        }

        /// Drain stats accumulated since the last call.
        pub fn take_stats(&mut self) -> IoStats {
            std::mem::take(&mut self.stats)
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.fds.iter().position(|p| p.fd == fd)
        }

        /// See [`super::Poller::register`].
        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered twice"));
            }
            self.fds.push(PollFd { fd, events: mask_of(interest), revents: 0 });
            self.tokens.push(token);
            Ok(())
        }

        /// See [`super::Poller::modify`].
        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds[i].events = mask_of(interest);
            self.tokens[i] = token;
            Ok(())
        }

        /// See [`super::Poller::deregister`].
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let i = self
                .position(fd)
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
            self.fds.swap_remove(i);
            self.tokens.swap_remove(i);
            Ok(())
        }

        /// See [`super::Poller::wait`].
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let n = loop {
                self.stats.syscalls += 1;
                let rc =
                    unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, timeout_ms) };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n > 0 {
                for (p, &token) in self.fds.iter().zip(&self.tokens) {
                    if p.revents == 0 {
                        continue;
                    }
                    events.push(Event::ready(
                        token,
                        p.revents & (POLLIN | POLLHUP) != 0,
                        p.revents & POLLOUT != 0,
                        p.revents & (POLLERR | POLLNVAL) != 0,
                    ));
                }
            }
            Ok(events.len())
        }
    }

    impl Default for PollPoller {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backend_smoke(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: times out empty.
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty());

        // A connection makes the listener readable.
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.register(conn.as_raw_fd(), 9, Interest::READ).unwrap();
        client.write_all(b"hi").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "conn readability never arrived");
        }

        // Write interest on an idle socket fires immediately.
        poller.modify(conn.as_raw_fd(), 9, Interest::WRITE).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.writable));

        poller.deregister(conn.as_raw_fd()).unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
        poller.wait(&mut events, 10).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn epoll_backend_delivers_events() {
        backend_smoke(Poller::Epoll(epoll::EpollPoller::new().unwrap()));
    }

    #[test]
    fn poll_backend_delivers_events() {
        backend_smoke(Poller::Poll(pollfd::PollPoller::new()));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn uring_backend_delivers_events() {
        match uring::UringPoller::new() {
            Ok(p) => backend_smoke(Poller::Uring(Box::new(p))),
            Err(e) => eprintln!("skipping: io_uring unavailable on this kernel: {e}"),
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn explicit_uring_request_falls_back_to_epoll() {
        // SWEB_URING_DISABLE simulates a kernel without io_uring; the
        // explicit request must still yield a working poller.
        std::env::set_var("SWEB_URING_DISABLE", "1");
        let p = Poller::with_backend(IoBackend::Uring).unwrap();
        std::env::remove_var("SWEB_URING_DISABLE");
        assert_eq!(p.backend(), "epoll");
        backend_smoke(p);
    }

    #[test]
    fn io_backend_parses_names() {
        assert_eq!(IoBackend::parse("uring"), Some(IoBackend::Uring));
        assert_eq!(IoBackend::parse("epoll"), Some(IoBackend::Epoll));
        assert_eq!(IoBackend::parse("auto"), Some(IoBackend::Auto));
        assert_eq!(IoBackend::parse("poll"), Some(IoBackend::Poll));
        assert_eq!(IoBackend::parse("kqueue"), None);
        assert_eq!(IoBackend::default().name(), "epoll");
    }

    #[test]
    fn connect_from_binds_requested_source() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let src: std::net::Ipv4Addr = "127.0.0.5".parse().unwrap();
        let client = connect_from(addr, src).unwrap();
        #[cfg(target_os = "linux")]
        assert_eq!(client.local_addr().unwrap().ip(), std::net::IpAddr::V4(src));
        let (server, peer) = listener.accept().unwrap();
        #[cfg(target_os = "linux")]
        assert_eq!(peer.ip(), std::net::IpAddr::V4(src));
        drop((client, server));
    }

    /// A connected blocking stream pair over loopback.
    fn stream_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn read_exact_n(s: &mut TcpStream, n: usize) -> Vec<u8> {
        use std::io::Read;
        let mut buf = vec![0u8; n];
        s.read_exact(&mut buf).unwrap();
        buf
    }

    fn two_slice_roundtrip(gather: fn(RawFd, &[u8], &[u8]) -> io::Result<usize>) {
        let (tx, mut rx) = stream_pair();
        let head = b"HTTP/1.0 200 OK\r\n\r\n".to_vec();
        let body = vec![b'x'; 4096];
        let mut sent = 0;
        let total = head.len() + body.len();
        while sent < total {
            let (a, b): (&[u8], &[u8]) = if sent < head.len() {
                (&head[sent..], &body)
            } else {
                (&[], &body[sent - head.len()..])
            };
            sent += gather(tx.as_raw_fd(), a, b).unwrap();
        }
        drop(tx);
        let got = read_exact_n(&mut rx, total);
        assert_eq!(&got[..head.len()], &head[..]);
        assert_eq!(&got[head.len()..], &body[..]);
    }

    #[test]
    fn write_two_gathers_both_slices() {
        two_slice_roundtrip(write_two);
    }

    #[test]
    fn write_two_seq_matches_writev_contract() {
        two_slice_roundtrip(write_two_seq);
    }

    #[test]
    fn write_two_skips_empty_slices() {
        let (tx, mut rx) = stream_pair();
        assert_eq!(write_two(tx.as_raw_fd(), b"", b"").unwrap(), 0);
        assert_eq!(write_two(tx.as_raw_fd(), b"", b"tail").unwrap(), 4);
        assert_eq!(write_two(tx.as_raw_fd(), b"head", b"").unwrap(), 4);
        drop(tx);
        assert_eq!(read_exact_n(&mut rx, 8), b"tailhead");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reuseport_listeners_share_one_port() {
        // Two listeners bound to one port form a kernel accept group; a
        // plain second bind on the same port must still fail.
        let a = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = a.local_addr().unwrap();
        let b = bind_reuseport(addr).expect("second reuseport bind joins the group");
        assert_eq!(b.local_addr().unwrap(), addr);
        assert!(
            TcpListener::bind(addr).is_err(),
            "a non-reuseport bind must not join the group"
        );
        // Connections land on *some* member of the group and are served.
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        for _ in 0..8 {
            let _client = TcpStream::connect(addr).unwrap();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                if a.accept().is_ok() || b.accept().is_ok() {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "accept never arrived");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn send_file_streams_and_advances_offset() {
        use std::io::Read;
        let dir = std::env::temp_dir().join(format!("sweb-sendfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();

        let (tx, mut rx) = stream_pair();
        let file = std::fs::File::open(&path).unwrap();
        let reader = std::thread::spawn(move || {
            let mut got = Vec::new();
            rx.read_to_end(&mut got).unwrap();
            got
        });
        let mut offset = 0u64;
        while offset < payload.len() as u64 {
            let want = (payload.len() as u64 - offset) as usize;
            match send_file(tx.as_raw_fd(), file.as_raw_fd(), &mut offset, want) {
                Ok(0) => panic!("file truncated"),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("sendfile: {e}"),
            }
        }
        assert_eq!(offset, payload.len() as u64);
        drop(tx);
        assert_eq!(reader.join().unwrap(), payload);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
