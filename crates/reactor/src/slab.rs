//! A generational slab: stable integer keys for connection state.
//!
//! Keys are `(index, generation)`. Freed slots are reused, but each reuse
//! bumps the slot's generation, so a stale key (a timer that fired after
//! its connection closed, a worker completion for an evicted client)
//! simply fails to resolve instead of touching the wrong connection.

/// Slab of `T` with generation-checked access.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<usize>,
    len: usize,
}

struct Slot<T> {
    gen: u64,
    value: Option<T>,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab { slots: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value; returns its `(index, generation)` key.
    pub fn insert(&mut self, value: T) -> (usize, u64) {
        self.len += 1;
        if let Some(i) = self.free.pop() {
            let slot = &mut self.slots[i];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            (i, slot.gen)
        } else {
            self.slots.push(Slot { gen: 0, value: Some(value) });
            (self.slots.len() - 1, 0)
        }
    }

    /// Access by index alone (the caller already validated liveness).
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.slots.get_mut(index).and_then(|s| s.value.as_mut())
    }

    /// Shared access by index alone.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.slots.get(index).and_then(|s| s.value.as_ref())
    }

    /// Access only if `gen` matches the slot's current generation.
    pub fn get_mut_checked(&mut self, index: usize, gen: u64) -> Option<&mut T> {
        match self.slots.get_mut(index) {
            Some(s) if s.gen == gen => s.value.as_mut(),
            _ => None,
        }
    }

    /// Current generation of a live slot.
    pub fn gen_of(&self, index: usize) -> Option<u64> {
        match self.slots.get(index) {
            Some(s) if s.value.is_some() => Some(s.gen),
            _ => None,
        }
    }

    /// Remove and return the value at `index`; the slot's generation is
    /// bumped so outstanding keys go stale.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        let slot = self.slots.get_mut(index)?;
        let value = slot.value.take()?;
        slot.gen += 1;
        self.free.push(index);
        self.len -= 1;
        Some(value)
    }

    /// Drain every live entry (shutdown path).
    pub fn drain_all(&mut self) -> Vec<(usize, T)> {
        let mut out = Vec::with_capacity(self.len);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(v) = slot.value.take() {
                slot.gen += 1;
                self.free.push(i);
                out.push((i, v));
            }
        }
        self.len = 0;
        out
    }

    /// Iterate over live `(index, &mut T)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| s.value.as_mut().map(|v| (i, v)))
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let (a, ga) = slab.insert("a");
        let (b, gb) = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get_mut_checked(a, ga), Some(&mut "a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get_mut_checked(b, gb), Some(&mut "b"));
    }

    #[test]
    fn stale_generation_does_not_resolve() {
        let mut slab = Slab::new();
        let (i, g) = slab.insert(1u32);
        slab.remove(i);
        let (i2, g2) = slab.insert(2u32);
        // Slot reused with a bumped generation.
        assert_eq!(i, i2);
        assert_ne!(g, g2);
        assert_eq!(slab.get_mut_checked(i, g), None);
        assert_eq!(slab.get_mut_checked(i2, g2), Some(&mut 2));
    }

    #[test]
    fn drain_all_empties_and_invalidates() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..5).map(|v| slab.insert(v)).collect();
        let drained = slab.drain_all();
        assert_eq!(drained.len(), 5);
        assert!(slab.is_empty());
        for (i, g) in keys {
            assert_eq!(slab.get_mut_checked(i, g), None);
        }
    }
}
