//! A bounded worker pool for blocking work (file reads, CGI execution).
//!
//! The event loop must never block on disk, so fulfilment runs on a small
//! fixed pool. The submission queue is bounded: when every worker is busy
//! and the queue is full, `try_submit` refuses and the caller sheds load
//! (503) instead of queueing unboundedly — the same admission philosophy
//! the paper applies at the connection level.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of blocking work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size pool with a bounded submission queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads sharing one queue of capacity `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize, name: &str) -> WorkerPool {
        assert!(workers > 0);
        let (tx, rx) = sync_channel::<Job>(queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), handles }
    }

    /// Submit without blocking. `Err` returns the job when the queue is
    /// full (shed) or the pool is shutting down.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        match self.tx.as_ref() {
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(j)) | Err(TrySendError::Disconnected(j)) => Err(j),
            },
            None => Err(job),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Close the queue and join every worker. Queued jobs still run.
    pub fn shutdown(&mut self) {
        self.tx = None; // closes the channel; workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only while dequeueing, not while running the job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(2, 16, "test");
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            assert!(pool
                .try_submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .is_ok());
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 8 {
            assert!(std::time::Instant::now() < deadline, "jobs never completed");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn full_queue_refuses_instead_of_blocking() {
        let pool = WorkerPool::new(1, 1, "test");
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        // Occupy the single worker.
        assert!(pool
            .try_submit(Box::new(move || {
                let _ = block_rx.recv();
            }))
            .is_ok());
        // Fill the queue (capacity 1), then the next submit must refuse.
        // The busy worker may or may not have dequeued the blocker yet, so
        // allow one extra success before demanding refusal.
        let mut refused = false;
        for _ in 0..3 {
            if pool.try_submit(Box::new(|| {})).is_err() {
                refused = true;
                break;
            }
        }
        assert!(refused, "bounded queue accepted unbounded work");
        block_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_joins_and_refuses_later_submits() {
        let mut pool = WorkerPool::new(2, 4, "test");
        pool.shutdown();
        assert!(pool.try_submit(Box::new(|| {})).is_err());
    }
}
