//! A hashed timer wheel with lazy cancellation.
//!
//! Deadlines are bucketed into `tick_ms` slots over a fixed ring. The
//! reactor never cancels an entry explicitly: when a connection's
//! deadline moves (new request, write progress) it simply schedules a new
//! entry, and expired entries are validated against the connection's
//! *current* generation and deadline before acting. A stale entry is a
//! few bytes of garbage that disappears when its slot next drains —
//! exactly the trade the classic hashed-wheel design makes to keep
//! schedule/advance O(1) amortized.

/// One scheduled expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// Slab index of the connection.
    pub token: usize,
    /// Slab generation the entry was scheduled for.
    pub gen: u64,
    /// Absolute deadline in reactor-clock milliseconds.
    pub deadline_ms: u64,
}

/// The wheel.
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick_ms: u64,
    /// Last tick fully drained by `advance`.
    last_tick: u64,
    /// Live (possibly stale) entries, to size drains.
    pending: usize,
}

impl TimerWheel {
    /// A wheel of `num_slots` buckets of `tick_ms` each. The ring spans
    /// `num_slots * tick_ms` milliseconds; deadlines beyond that are
    /// handled correctly (entries further than one revolution away are
    /// re-queued when their slot drains early).
    pub fn new(num_slots: usize, tick_ms: u64) -> TimerWheel {
        assert!(num_slots > 1 && tick_ms > 0);
        TimerWheel {
            slots: (0..num_slots).map(|_| Vec::new()).collect(),
            tick_ms,
            last_tick: 0,
            pending: 0,
        }
    }

    /// Milliseconds per tick.
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// Entries currently queued (including stale ones awaiting drain).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedule an expiry. Deadlines at or before the current tick fire
    /// on the next `advance`.
    ///
    /// The slot is the first tick boundary *at or after* the deadline
    /// (ceiling, not floor): `advance` visits each slot exactly once per
    /// revolution, so an entry filed under the floor tick could be
    /// inspected a few milliseconds *before* its deadline, kept, and
    /// then not seen again for a full revolution — a 10 ms timeout
    /// firing seconds late.
    pub fn schedule(&mut self, entry: TimerEntry) {
        let tick = entry.deadline_ms.div_ceil(self.tick_ms).max(self.last_tick + 1);
        let slot = (tick as usize) % self.slots.len();
        self.slots[slot].push(entry);
        self.pending += 1;
    }

    /// Advance the wheel to `now_ms`, appending every entry whose
    /// deadline has passed to `expired`. Entries in visited slots whose
    /// deadline is still in the future (a later revolution) are kept.
    pub fn advance(&mut self, now_ms: u64, expired: &mut Vec<TimerEntry>) {
        let now_tick = now_ms / self.tick_ms;
        if now_tick <= self.last_tick {
            return;
        }
        let n = self.slots.len() as u64;
        // Visit each slot at most once per advance, even if we fell far
        // behind (each slot holds every residue class of its index).
        let span = (now_tick - self.last_tick).min(n);
        for t in self.last_tick + 1..=self.last_tick + span {
            let slot = (t as usize) % self.slots.len();
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline_ms <= now_ms {
                    let e = bucket.swap_remove(i);
                    self.pending -= 1;
                    expired.push(e);
                } else {
                    i += 1;
                }
            }
        }
        self.last_tick = now_tick;
    }

    /// Milliseconds until the next tick boundary after `now_ms` — the
    /// natural poll timeout when no I/O is pending.
    pub fn ms_to_next_tick(&self, now_ms: u64) -> u64 {
        self.tick_ms - (now_ms % self.tick_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expired_at(wheel: &mut TimerWheel, now: u64) -> Vec<TimerEntry> {
        let mut out = Vec::new();
        wheel.advance(now, &mut out);
        out
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w = TimerWheel::new(16, 10);
        w.schedule(TimerEntry { token: 1, gen: 0, deadline_ms: 55 });
        assert!(expired_at(&mut w, 40).is_empty());
        let fired = expired_at(&mut w, 60);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token, 1);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn deadline_beyond_one_revolution_waits() {
        let mut w = TimerWheel::new(8, 10); // ring spans 80 ms
        w.schedule(TimerEntry { token: 3, gen: 0, deadline_ms: 250 });
        // Sweep several revolutions below the deadline: nothing fires.
        for now in (10..250).step_by(10) {
            assert!(expired_at(&mut w, now).is_empty(), "premature fire at {now}");
        }
        assert_eq!(expired_at(&mut w, 250).len(), 1);
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut w = TimerWheel::new(8, 10);
        expired_at(&mut w, 100); // move time forward
        w.schedule(TimerEntry { token: 9, gen: 2, deadline_ms: 30 }); // already past
        let fired = expired_at(&mut w, 110);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].gen, 2);
    }

    #[test]
    fn big_jump_drains_every_slot_once() {
        let mut w = TimerWheel::new(4, 10);
        for t in 0..12 {
            w.schedule(TimerEntry { token: t, gen: 0, deadline_ms: 10 + (t as u64) * 7 });
        }
        // Jump far past everything in one advance.
        let fired = expired_at(&mut w, 10_000);
        assert_eq!(fired.len(), 12);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn mid_tick_deadline_fires_next_boundary_not_next_revolution() {
        // deadline 55 lands mid-tick. An advance that reaches tick 5
        // (now=50..54) must NOT consume-and-drop the slot with the
        // entry unexpired; the very next boundary (now=60) fires it.
        let mut w = TimerWheel::new(8, 10); // ring spans 80 ms
        w.schedule(TimerEntry { token: 7, gen: 0, deadline_ms: 55 });
        assert!(expired_at(&mut w, 52).is_empty(), "fired before the deadline");
        let fired = expired_at(&mut w, 61);
        assert_eq!(fired.len(), 1, "entry missed its slot: would fire a revolution late");
        assert_eq!(fired[0].token, 7);
    }

    #[test]
    fn next_tick_timeout_is_bounded() {
        let w = TimerWheel::new(16, 25);
        for now in [0, 1, 24, 25, 26, 99] {
            let ms = w.ms_to_next_tick(now);
            assert!((1..=25).contains(&ms), "timeout {ms} at now={now}");
        }
    }
}
