//! The io_uring backend: completion-based I/O with batched syscalls.
//!
//! Where epoll charges one syscall per readiness notification and one
//! more per `accept`/`writev`, io_uring amortizes all of them into (at
//! most) one `io_uring_enter` per loop tick: the shard queues submission
//! entries (SQEs) into a shared-memory ring, the kernel posts completion
//! entries (CQEs) into a second ring, and a tick that finds completions
//! already posted needs **zero** syscalls. On top of the plain poll
//! translation this backend implements:
//!
//! * **multishot accept** on the listener — one SQE yields a stream of
//!   accepted-fd CQEs, no `accept(2)` calls at all;
//! * **multishot poll** for connection readiness — one SQE per interest
//!   change rather than per event;
//! * **registered (fixed) files** — long-lived connection fds are
//!   installed into the ring's file table with inline `FILES_UPDATE`
//!   SQEs, skipping the per-op fd lookup;
//! * **queued writes with linked SQE chains** — the cache-hit response
//!   is submitted as a `WRITEV` SQE; on keep-alive it carries
//!   `IOSQE_IO_LINK` into the next-request `POLL_ADD`, so
//!   write-response → await-next-request re-enters the kernel zero
//!   times between requests;
//! * **registered buffers + `WRITE_FIXED`** — small responses are
//!   staged into a pre-registered buffer pool (sized off the file
//!   cache's per-segment budget) and sent as `WRITE_FIXED`, so the
//!   kernel skips per-op buffer mapping *and* the response `Bytes`
//!   drops at submission instead of being pinned until the CQE;
//! * **`SEND_ZC`** for large bodies — the uring-native successor to
//!   the sendfile path: the kernel transmits straight from the shared
//!   body pages (no copy into socket buffers), completion arrives as a
//!   result CQE plus a buffer-release notification CQE, and the op's
//!   buffers stay alive until the notification lands;
//! * **SQPOLL** (opt-in via `SWEB_URING_SQPOLL=1`) — a kernel-side
//!   submission thread consumes SQEs without `io_uring_enter`; useful
//!   only with spare cores, so it stays off by default.
//!
//! Everything is raw FFI (syscalls 425/426/427 + `mmap`), matching the
//! crate's no-dependency policy. The [`super::Poller`] seam keeps the
//! level-triggered contract: `POLL_ADD` performs a readiness check at
//! arm time (an already-ready fd completes inline), so re-arming after
//! each interest change behaves like level-triggered epoll with at most
//! one benign spurious wakeup per transition.
//!
//! Feature detection is dynamic: multishot poll/accept downgrade to
//! oneshot on `EINVAL` (older kernels), the fixed-file table is skipped
//! if sparse registration fails, and [`UringPoller::new`] refuses
//! kernels without `SINGLE_MMAP`/`NODROP`/`EXT_ARG` so callers fall
//! back to epoll.

use super::{Event, Interest, IoStats, IoVec};
use crate::slab::Slab;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicU32, Ordering};

const SYS_IO_URING_SETUP: i64 = 425;
const SYS_IO_URING_ENTER: i64 = 426;
const SYS_IO_URING_REGISTER: i64 = 427;

const IORING_OP_WRITEV: u8 = 2;
const IORING_OP_WRITE_FIXED: u8 = 5;
const IORING_OP_POLL_ADD: u8 = 6;
const IORING_OP_ACCEPT: u8 = 13;
const IORING_OP_ASYNC_CANCEL: u8 = 14;
const IORING_OP_FILES_UPDATE: u8 = 20;
const IORING_OP_SEND_ZC: u8 = 47;

const IORING_SETUP_SQPOLL: u32 = 1 << 1;
const IORING_SETUP_CQSIZE: u32 = 1 << 3;
const IORING_SETUP_CLAMP: u32 = 1 << 4;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
const IORING_FEAT_NODROP: u32 = 1 << 1;
const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

const IOSQE_FIXED_FILE: u8 = 1 << 0;
const IOSQE_IO_LINK: u8 = 1 << 2;

/// Multishot flag for `POLL_ADD`; lives in `sqe.len`.
const IORING_POLL_ADD_MULTI: u32 = 1 << 0;
/// Multishot flag for `ACCEPT`; lives in `sqe.ioprio`.
const IORING_ACCEPT_MULTISHOT: u16 = 1 << 0;

const IORING_CQE_F_MORE: u32 = 1 << 1;
/// This CQE is a zero-copy buffer-release notification, not a result.
const IORING_CQE_F_NOTIF: u32 = 1 << 3;

/// `SOCK_CLOEXEC` for the `ACCEPT` op's accept4-style flags.
const SOCK_CLOEXEC: u32 = 0o2000000;

const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
const IORING_ENTER_SQ_WAKEUP: u32 = 1 << 1;
const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

const IORING_SQ_NEED_WAKEUP: u32 = 1 << 0;
const IORING_SQ_CQ_OVERFLOW: u32 = 1 << 1;

const IORING_REGISTER_BUFFERS: u32 = 0;
const IORING_UNREGISTER_BUFFERS: u32 = 1;
const IORING_REGISTER_FILES: u32 = 2;
const IORING_UNREGISTER_FILES: u32 = 3;
const IORING_REGISTER_PROBE: u32 = 8;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const POLLIN: u32 = 0x001;
const POLLOUT: u32 = 0x004;
const POLLERR: u32 = 0x008;
const POLLHUP: u32 = 0x010;
const POLLRDHUP: u32 = 0x2000;

const EINTR: i32 = 4;
const EAGAIN: i32 = 11;
const EBUSY: i32 = 16;
const EINVAL: i32 = 22;
const ETIME: i32 = 62;
const EOPNOTSUPP: i32 = 95;
const ECANCELED: i32 = 125;

/// Submission ring depth. 256 slots is comfortably more than one loop
/// tick produces; overflow spills to a userspace backlog that preserves
/// submission order (ordering matters for cancel-after-arm and links).
const SQ_ENTRIES: u32 = 256;
/// Completion ring depth: sized for multishot storms (accept bursts plus
/// one CQE per held connection) so `NODROP` overflow handling stays the
/// exception, not the rule.
const CQ_ENTRIES: u32 = 4096;
/// Sparse fixed-file table size: one slot per possible connection.
const FIXED_TABLE: u32 = 4096;

/// Registered-buffer slot size. Covers a response head plus any body the
/// file cache would call "small" (the long tail of document sizes);
/// anything larger goes out as plain `WRITEV` or `SEND_ZC`.
const BUF_SLOT: usize = 16 * 1024;
/// Default registered-buffer pool size when the caller doesn't wire one
/// (matches the file cache's default 2 MiB per-segment share).
pub(crate) const DEFAULT_BUF_POOL: usize = 2 << 20;
/// Bodies at least this large are sent with `SEND_ZC` instead of
/// `WRITEV`: below it, the page-pinning setup costs more than the copy
/// it avoids.
const ZC_MIN_BODY: usize = 64 * 1024;
/// Idle milliseconds before an SQPOLL kernel thread parks itself.
const SQPOLL_IDLE_MS: u32 = 50;

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;
const MAP_POPULATE: i32 = 0x8000;

extern "C" {
    fn syscall(num: i64, ...) -> i64;
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
    fn close(fd: i32) -> i32;
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct IoUringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqOffsets,
    cq_off: CqOffsets,
}

/// One submission-queue entry (64-byte kernel ABI).
#[repr(C)]
#[derive(Clone, Copy)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    op_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    pad: [u64; 2],
}

impl Sqe {
    fn zeroed() -> Sqe {
        // Safety: Sqe is plain-old-data; all-zero is the kernel's no-op
        // baseline for every field.
        unsafe { std::mem::zeroed() }
    }
}

/// One completion-queue entry (16-byte kernel ABI).
#[repr(C)]
#[derive(Clone, Copy)]
struct Cqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

#[repr(C)]
struct GeteventsArg {
    sigmask: u64,
    sigmask_sz: u32,
    pad: u32,
    ts: u64,
}

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

// user_data layout: kind(2) | registration-or-op index(30) | seq(32).
// The seq is a global monotonic arm counter: a CQE whose seq does not
// match the slot's current seq is from a previous life of the slot and
// is dropped, the same staleness discipline the loop's generational
// slab uses.
const KIND_POLL: u8 = 0;
const KIND_ACCEPT: u8 = 1;
const KIND_WRITE: u8 = 2;
const KIND_MISC: u8 = 3;

/// `KIND_MISC` seq values (MISC ops carry their discriminator in seq).
const MISC_CANCEL: u32 = 0;
const MISC_FILES_UPDATE: u32 = 1;

fn pack(kind: u8, idx: usize, seq: u32) -> u64 {
    ((kind as u64) << 62) | (((idx as u64) & 0x3fff_ffff) << 32) | seq as u64
}

/// One watched fd (connection or listener).
struct Reg {
    fd: RawFd,
    token: usize,
    interest: Interest,
    is_accept: bool,
    /// Seq of the currently-armed SQE (stale CQEs are dropped on mismatch).
    seq: u32,
    armed: bool,
    /// Kind of the armed SQE (`KIND_ACCEPT` listeners downgrade to
    /// `KIND_POLL` when multishot accept is unavailable).
    kind: u8,
    /// Slot in the registered-file table, when one was available.
    fixed_slot: Option<u32>,
}

/// An in-flight queued write (`WRITEV`, `WRITE_FIXED`, or `SEND_ZC`).
/// The kernel reads `iov` (and through it `head`/`body`, or the staged
/// pool slot) asynchronously, so the op must stay alive — buffers
/// unmoved — until its CQE arrives, even if the connection dies first.
/// `SEND_ZC` ops additionally stay alive until every buffer-release
/// notification CQE has landed (`zc_pending`), because the kernel reads
/// the body pages until then.
struct WriteOp {
    token: usize,
    reg_idx: usize,
    reg_gen: u64,
    head: Vec<u8>,
    body: Bytes,
    pos: usize,
    /// Total response length. Staged (`fixed_buf`) ops drop `head`/`body`
    /// at submission, so the length has to live here.
    total: usize,
    iov: Box<[IoVec; 2]>,
    seq: u32,
    link_read: bool,
    /// Registered-buffer slot the response was staged into, if any.
    fixed_buf: Option<u32>,
    /// Send the body portion with `SEND_ZC` instead of `WRITEV`.
    send_zc: bool,
    /// Outstanding `SEND_ZC` notification CQEs; the op cannot be freed
    /// while any remain.
    zc_pending: u32,
    /// Data path finished (completed, failed, or connection gone); the
    /// op is only waiting out `zc_pending`.
    finished: bool,
}

/// An in-flight `FILES_UPDATE` (the fd value must stay addressable until
/// the CQE). `reg_idx == usize::MAX` marks a slot-clearing update whose
/// failure needs no rollback.
struct UpdateOp {
    fds: Box<i32>,
    reg_idx: usize,
    reg_gen: u64,
}

/// A per-shard io_uring instance implementing the [`super::Poller`]
/// contract, plus the completion-only extensions (`register_accept`,
/// `queue_writev`) the reactor loop uses when this backend is active.
pub struct UringPoller {
    ring_fd: RawFd,
    ring: *mut u8,
    ring_len: usize,
    sqes: *mut Sqe,
    sqes_len: usize,
    sq_khead: *const AtomicU32,
    sq_ktail: *const AtomicU32,
    sq_kflags: *const AtomicU32,
    sq_mask: u32,
    sq_entries: u32,
    cq_khead: *const AtomicU32,
    cq_ktail: *const AtomicU32,
    cq_mask: u32,
    cqes: *const Cqe,
    /// Userspace tail: SQEs written but possibly not yet submitted.
    local_tail: u32,
    multishot_poll: bool,
    multishot_accept: bool,
    queued_writes: bool,
    /// Whether a fixed-file table is registered with the kernel (and
    /// must be explicitly unregistered during [`UringPoller::shutdown`]).
    fixed_table: bool,
    fixed_free: Vec<u32>,
    /// Registered-buffer pool backing `WRITE_FIXED` staging: `buf_slots`
    /// equal slots of [`BUF_SLOT`] bytes, registered with the kernel at
    /// setup. Empty when registration failed or was opted out.
    buf_pool: Vec<u8>,
    buf_slots: u32,
    buf_free: Vec<u32>,
    buf_registered: bool,
    /// Kernel supports `IORING_OP_SEND_ZC` (probed at setup).
    send_zc_ok: bool,
    /// Ring was set up with `IORING_SETUP_SQPOLL`.
    sqpoll: bool,
    regs: Slab<Reg>,
    by_fd: HashMap<RawFd, usize>,
    writes: Slab<WriteOp>,
    updates: Slab<UpdateOp>,
    backlog: VecDeque<Sqe>,
    scratch: Vec<Event>,
    seq: u32,
    stats: IoStats,
}

// Safety: the ring is owned by exactly one shard thread; the raw
// pointers reference mappings private to this instance. `Send` (not
// `Sync`) matches how the reactor moves its poller into the shard
// thread at spawn.
unsafe impl Send for UringPoller {}

fn unsupported(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Unsupported, msg.to_string())
}

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v == "1")
}

/// `IORING_REGISTER_PROBE`: ask the kernel which opcodes it supports.
/// Returns false on kernels that predate the probe itself (5.6) — any
/// opcode new enough for us to probe for is absent there anyway.
fn probe_opcode(ring_fd: RawFd, opcode: u8) -> bool {
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct ProbeOp {
        op: u8,
        resv: u8,
        flags: u16, // bit 0: IO_URING_OP_SUPPORTED
        resv2: u32,
    }
    #[repr(C)]
    struct Probe {
        last_op: u8,
        ops_len: u8,
        resv: u16,
        resv2: [u32; 3],
        ops: [ProbeOp; 256],
    }
    let mut probe: Probe = unsafe { std::mem::zeroed() };
    let rc = unsafe {
        syscall(
            SYS_IO_URING_REGISTER,
            ring_fd as usize,
            IORING_REGISTER_PROBE as usize,
            &mut probe as *mut Probe as usize,
            256usize,
        )
    };
    rc == 0 && probe.last_op >= opcode && probe.ops[opcode as usize].flags & 1 != 0
}

impl UringPoller {
    /// Set up the ring, or fail with `Unsupported` (caller falls back to
    /// epoll) when the kernel lacks io_uring or the features we need.
    ///
    /// Debug escape hatches: `SWEB_URING_DISABLE=1` refuses outright
    /// (exercises the fallback path on capable kernels),
    /// `SWEB_URING_ONESHOT=1` disables multishot poll/accept,
    /// `SWEB_URING_NO_FIXED=1` skips the registered-file table,
    /// `SWEB_URING_NO_QWRITE=1` disables queued writes (the loop then
    /// drains responses through the classic readiness path),
    /// `SWEB_URING_NO_BUFS=1` skips the registered-buffer pool (every
    /// queued write goes out as plain `WRITEV`), `SWEB_URING_NO_ZC=1`
    /// disables `SEND_ZC` (large bodies fall back to `WRITEV` /
    /// sendfile), and `SWEB_URING_SQPOLL=1` opts into a kernel
    /// submission-poll thread.
    pub fn new() -> io::Result<UringPoller> {
        UringPoller::with_pool_bytes(DEFAULT_BUF_POOL)
    }

    /// [`UringPoller::new`] with an explicit registered-buffer pool
    /// budget in bytes (rounded down to whole [`BUF_SLOT`] slots; 0
    /// disables the pool). The reactor wires the file cache's
    /// per-segment share through here so staging capacity tracks the
    /// hot-document working set.
    pub fn with_pool_bytes(pool_bytes: usize) -> io::Result<UringPoller> {
        if env_flag("SWEB_URING_DISABLE") {
            return Err(unsupported("io_uring disabled by SWEB_URING_DISABLE"));
        }
        let want_sqpoll = env_flag("SWEB_URING_SQPOLL");
        let mut p = IoUringParams::default();
        let mut sqpoll = false;
        let mut rc = -1i64;
        for try_sqpoll in [want_sqpoll, false] {
            p = IoUringParams {
                cq_entries: CQ_ENTRIES,
                flags: IORING_SETUP_CQSIZE
                    | IORING_SETUP_CLAMP
                    | if try_sqpoll { IORING_SETUP_SQPOLL } else { 0 },
                sq_thread_idle: if try_sqpoll { SQPOLL_IDLE_MS } else { 0 },
                ..IoUringParams::default()
            };
            rc = unsafe {
                syscall(SYS_IO_URING_SETUP, SQ_ENTRIES as usize, &mut p as *mut IoUringParams)
            };
            if rc >= 0 {
                sqpoll = try_sqpoll;
                break;
            }
            if !try_sqpoll {
                break;
            }
            // SQPOLL refused (old kernel / missing privilege): retry plain.
        }
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let ring_fd = rc as RawFd;
        let need = IORING_FEAT_SINGLE_MMAP | IORING_FEAT_NODROP | IORING_FEAT_EXT_ARG;
        if p.features & need != need {
            unsafe { close(ring_fd) };
            return Err(unsupported("kernel io_uring lacks SINGLE_MMAP/NODROP/EXT_ARG"));
        }
        let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
        let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
        let ring_len = sq_len.max(cq_len);
        let ring = unsafe {
            mmap(
                std::ptr::null_mut(),
                ring_len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                ring_fd,
                IORING_OFF_SQ_RING,
            )
        };
        if ring as isize == -1 {
            let err = io::Error::last_os_error();
            unsafe { close(ring_fd) };
            return Err(err);
        }
        let sqes_len = p.sq_entries as usize * std::mem::size_of::<Sqe>();
        let sqes = unsafe {
            mmap(
                std::ptr::null_mut(),
                sqes_len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                ring_fd,
                IORING_OFF_SQES,
            )
        };
        if sqes as isize == -1 {
            let err = io::Error::last_os_error();
            unsafe {
                munmap(ring, ring_len);
                close(ring_fd)
            };
            return Err(err);
        }
        // Identity map the SQ index array once: slot i always holds SQE i.
        let sq_array = unsafe { ring.add(p.sq_off.array as usize) } as *mut u32;
        for i in 0..p.sq_entries {
            unsafe { sq_array.add(i as usize).write(i) };
        }
        let sq_mask = unsafe { *(ring.add(p.sq_off.ring_mask as usize) as *const u32) };
        let cq_mask = unsafe { *(ring.add(p.cq_off.ring_mask as usize) as *const u32) };
        // Sparse fixed-file table: all -1, filled per-connection with
        // FILES_UPDATE SQEs. Optional — older kernels reject sparse sets.
        let mut fixed_free = Vec::new();
        if !env_flag("SWEB_URING_NO_FIXED") {
            let fds = vec![-1i32; FIXED_TABLE as usize];
            let rc = unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    ring_fd as usize,
                    IORING_REGISTER_FILES as usize,
                    fds.as_ptr() as usize,
                    FIXED_TABLE as usize,
                )
            };
            if rc == 0 {
                fixed_free = (0..FIXED_TABLE).rev().collect();
            }
        }
        // Registered-buffer pool: one contiguous allocation carved into
        // BUF_SLOT-sized staging slots, registered as one iovec per slot
        // (WRITE_FIXED's buf_index selects an iovec). Registration pins
        // the pages, so failure (memlock/cgroup limits, old kernels) just
        // means every write stays a plain WRITEV.
        let mut buf_pool = Vec::new();
        let mut buf_free = Vec::new();
        let mut buf_registered = false;
        let buf_slots = if env_flag("SWEB_URING_NO_BUFS") {
            0
        } else {
            (pool_bytes / BUF_SLOT).min(1024) as u32
        };
        if buf_slots > 0 {
            buf_pool = vec![0u8; buf_slots as usize * BUF_SLOT];
            let iovs: Vec<IoVec> = (0..buf_slots as usize)
                .map(|i| IoVec { base: buf_pool[i * BUF_SLOT..].as_ptr(), len: BUF_SLOT })
                .collect();
            let rc = unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    ring_fd as usize,
                    IORING_REGISTER_BUFFERS as usize,
                    iovs.as_ptr() as usize,
                    buf_slots as usize,
                )
            };
            if rc == 0 {
                buf_registered = true;
                buf_free = (0..buf_slots).rev().collect();
            } else {
                buf_pool = Vec::new();
            }
        }
        // Probe the opcode table once: SEND_ZC (5.19+) gets a positive
        // capability check instead of a per-op EINVAL dance.
        let send_zc_ok = !env_flag("SWEB_URING_NO_ZC") && probe_opcode(ring_fd, IORING_OP_SEND_ZC);
        let oneshot = env_flag("SWEB_URING_ONESHOT");
        Ok(UringPoller {
            ring_fd,
            ring,
            ring_len,
            sqes: sqes as *mut Sqe,
            sqes_len,
            sq_khead: unsafe { ring.add(p.sq_off.head as usize) } as *const AtomicU32,
            sq_ktail: unsafe { ring.add(p.sq_off.tail as usize) } as *const AtomicU32,
            sq_kflags: unsafe { ring.add(p.sq_off.flags as usize) } as *const AtomicU32,
            sq_mask,
            sq_entries: p.sq_entries,
            cq_khead: unsafe { ring.add(p.cq_off.head as usize) } as *const AtomicU32,
            cq_ktail: unsafe { ring.add(p.cq_off.tail as usize) } as *const AtomicU32,
            cq_mask,
            cqes: unsafe { ring.add(p.cq_off.cqes as usize) } as *const Cqe,
            local_tail: 0,
            multishot_poll: !oneshot,
            multishot_accept: !oneshot,
            queued_writes: !env_flag("SWEB_URING_NO_QWRITE"),
            fixed_table: !fixed_free.is_empty(),
            fixed_free,
            buf_pool,
            buf_slots,
            buf_free,
            buf_registered,
            send_zc_ok,
            sqpoll,
            regs: Slab::new(),
            by_fd: HashMap::new(),
            writes: Slab::new(),
            updates: Slab::new(),
            backlog: VecDeque::new(),
            scratch: Vec::new(),
            seq: 0,
            stats: IoStats::default(),
        })
    }

    fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }

    // ---- submission-side plumbing ----------------------------------

    fn sq_pending(&self) -> u32 {
        let head = unsafe { (*self.sq_khead).load(Ordering::Acquire) };
        self.local_tail.wrapping_sub(head)
    }

    fn cq_overflowed(&self) -> bool {
        let flags = unsafe { (*self.sq_kflags).load(Ordering::Acquire) };
        flags & IORING_SQ_CQ_OVERFLOW != 0
    }

    /// With SQPOLL, whether the kernel submission thread has parked and
    /// needs an `io_uring_enter(SQ_WAKEUP)` to resume consuming SQEs.
    fn sq_need_wakeup(&self) -> bool {
        let flags = unsafe { (*self.sq_kflags).load(Ordering::Acquire) };
        flags & IORING_SQ_NEED_WAKEUP != 0
    }

    fn try_ring_push(&mut self, sqe: &Sqe) -> bool {
        if self.sq_pending() >= self.sq_entries {
            return false;
        }
        let slot = (self.local_tail & self.sq_mask) as usize;
        unsafe { self.sqes.add(slot).write(*sqe) };
        self.local_tail = self.local_tail.wrapping_add(1);
        unsafe { (*self.sq_ktail).store(self.local_tail, Ordering::Release) };
        true
    }

    /// Queue one SQE. Order is preserved even under ring pressure: once
    /// anything sits in the backlog, everything new goes behind it.
    fn push(&mut self, sqe: Sqe) {
        self.stats.sqe_submitted += 1;
        if !self.backlog.is_empty() || !self.try_ring_push(&sqe) {
            // SQ-pressure signal: a backlogged SQE waits at least one
            // extra submit round behind ring-resident ones, which is the
            // latency-ordering suspect for tail regressions under load.
            self.stats.sqe_backlogged += 1;
            self.backlog.push_back(sqe);
        }
    }

    /// Move backlogged SQEs into the ring, forcing a submit-only enter
    /// when the ring is full. Bounded so a wedged ring cannot spin.
    fn flush_backlog(&mut self) {
        let mut attempts = 0;
        while let Some(front) = self.backlog.front().copied() {
            if self.try_ring_push(&front) {
                self.backlog.pop_front();
                continue;
            }
            attempts += 1;
            if attempts > 8 || self.enter(self.sq_pending(), 0, 0, None).is_err() {
                break;
            }
        }
    }

    fn push_cancel(&mut self, target_user_data: u64) {
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_ASYNC_CANCEL;
        sqe.fd = -1;
        sqe.addr = target_user_data;
        sqe.user_data = pack(KIND_MISC, 0, MISC_CANCEL);
        self.push(sqe);
    }

    /// One `io_uring_enter`: submit `to_submit` SQEs and (optionally)
    /// wait for completions. `EINTR`/`ETIME`/`EBUSY`/`EAGAIN` are
    /// treated as an empty wakeup — the caller reaps whatever is there.
    fn enter(
        &mut self,
        to_submit: u32,
        min_complete: u32,
        flags: u32,
        ts: Option<&Timespec>,
    ) -> io::Result<()> {
        self.stats.syscalls += 1;
        let flags = if self.sqpoll && self.sq_need_wakeup() {
            flags | IORING_ENTER_SQ_WAKEUP
        } else {
            flags
        };
        let rc = match ts {
            Some(t) => {
                let arg = GeteventsArg {
                    sigmask: 0,
                    sigmask_sz: 8,
                    pad: 0,
                    ts: t as *const Timespec as u64,
                };
                unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.ring_fd as usize,
                        to_submit as usize,
                        min_complete as usize,
                        (flags | IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG) as usize,
                        &arg as *const GeteventsArg as usize,
                        std::mem::size_of::<GeteventsArg>(),
                    )
                }
            }
            None => unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.ring_fd as usize,
                    to_submit as usize,
                    min_complete as usize,
                    flags as usize,
                    0usize,
                    0usize,
                )
            },
        };
        if rc >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            Some(EINTR) | Some(ETIME) | Some(EBUSY) | Some(EAGAIN) => Ok(()),
            _ => Err(err),
        }
    }

    // ---- arming ----------------------------------------------------

    fn arm_poll(&mut self, ridx: usize) {
        let seq = self.next_seq();
        let multi = self.multishot_poll;
        let Some(reg) = self.regs.get_mut(ridx) else { return };
        reg.seq = seq;
        reg.armed = true;
        reg.kind = KIND_POLL;
        let mut mask = POLLERR | POLLHUP | POLLRDHUP;
        if reg.interest.readable {
            mask |= POLLIN;
        }
        if reg.interest.writable {
            mask |= POLLOUT;
        }
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_POLL_ADD;
        if let Some(slot) = reg.fixed_slot {
            sqe.fd = slot as i32;
            sqe.flags |= IOSQE_FIXED_FILE;
        } else {
            sqe.fd = reg.fd;
        }
        sqe.op_flags = mask;
        if multi {
            sqe.len = IORING_POLL_ADD_MULTI;
        }
        sqe.user_data = pack(KIND_POLL, ridx, seq);
        self.push(sqe);
    }

    fn arm_accept(&mut self, ridx: usize) {
        if !self.multishot_accept {
            // Downgrade: poll the listener for readability and let the
            // loop fall back to accept(2).
            if let Some(reg) = self.regs.get_mut(ridx) {
                reg.interest = Interest::READ;
            }
            self.arm_poll(ridx);
            return;
        }
        let seq = self.next_seq();
        let Some(reg) = self.regs.get_mut(ridx) else { return };
        reg.seq = seq;
        reg.armed = true;
        reg.kind = KIND_ACCEPT;
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_ACCEPT;
        sqe.fd = reg.fd;
        sqe.ioprio = IORING_ACCEPT_MULTISHOT;
        // `accept4(2)` flags ride in op_flags. CLOEXEC matters: without
        // it every accepted connection leaks into forked CGI children,
        // and a child (or grandchild) outliving its request holds the
        // socket open — the server's close() then sends no FIN and
        // clients waiting for EOF hang. The readiness paths get this
        // from std's accept; the ring op must ask for it explicitly.
        sqe.op_flags = SOCK_CLOEXEC;
        sqe.user_data = pack(KIND_ACCEPT, ridx, seq);
        self.push(sqe);
    }

    /// Cancel whatever SQE the registration currently has armed. The
    /// resulting ECANCELED CQE is dropped by seq staleness if the slot
    /// is re-armed (new seq) before it lands.
    fn cancel_current(&mut self, ridx: usize) {
        let Some(reg) = self.regs.get_mut(ridx) else { return };
        if !reg.armed {
            return;
        }
        reg.armed = false;
        let target = pack(reg.kind, ridx, reg.seq);
        self.push_cancel(target);
    }

    fn queue_files_update(&mut self, slot: u32, fd: i32, reg_idx: usize, reg_gen: u64, link: bool) {
        let (uidx, _) = self.updates.insert(UpdateOp { fds: Box::new(fd), reg_idx, reg_gen });
        let ptr = {
            let op = self.updates.get_mut(uidx).expect("update op just inserted");
            &*op.fds as *const i32 as u64
        };
        let mut sqe = Sqe::zeroed();
        sqe.opcode = IORING_OP_FILES_UPDATE;
        sqe.fd = -1;
        sqe.off = slot as u64;
        sqe.addr = ptr;
        sqe.len = 1;
        if link {
            sqe.flags |= IOSQE_IO_LINK;
        }
        sqe.user_data = pack(KIND_MISC, uidx, MISC_FILES_UPDATE);
        self.push(sqe);
    }

    // ---- public Poller surface -------------------------------------

    /// See [`super::Poller::register`].
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.by_fd.contains_key(&fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered twice"));
        }
        let fixed_slot = self.fixed_free.pop();
        let (ridx, rgen) = self.regs.insert(Reg {
            fd,
            token,
            interest,
            is_accept: false,
            seq: 0,
            armed: false,
            kind: KIND_POLL,
            fixed_slot,
        });
        self.by_fd.insert(fd, ridx);
        self.stats.syscalls_saved += 1; // the epoll_ctl(ADD) this replaces
        if let Some(slot) = fixed_slot {
            // Install the fd into the registered table. Linking the
            // first poll behind the update means a failed install
            // cancels the poll, whose ECANCELED handler re-arms against
            // the plain fd (the update-failure handler clears the slot).
            self.queue_files_update(slot, fd, ridx, rgen, interest != Interest::NONE);
        }
        if interest != Interest::NONE {
            self.arm_poll(ridx);
        }
        Ok(())
    }

    /// Register a listener for completion-based accepts: one multishot
    /// `ACCEPT` SQE yields accepted fds directly in [`Event::accepted`],
    /// with no `accept(2)` syscalls. Falls back to readiness polling
    /// (and the loop's accept(2) path) on kernels without multishot.
    pub fn register_accept(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        if self.by_fd.contains_key(&fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered twice"));
        }
        let (ridx, _) = self.regs.insert(Reg {
            fd,
            token,
            interest: Interest::READ,
            is_accept: true,
            seq: 0,
            armed: false,
            kind: KIND_ACCEPT,
            fixed_slot: None,
        });
        self.by_fd.insert(fd, ridx);
        self.stats.syscalls_saved += 1;
        self.arm_accept(ridx);
        Ok(())
    }

    /// See [`super::Poller::modify`]. Re-arming is elided when the
    /// armed interest already matches — which is exactly what makes the
    /// linked write→poll chain free: the loop's later `READ` modify
    /// finds the linked poll already armed and does nothing.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let Some(&ridx) = self.by_fd.get(&fd) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        };
        self.stats.syscalls_saved += 1; // the epoll_ctl(MOD) this replaces
        let Some(reg) = self.regs.get_mut(ridx) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        };
        reg.token = token;
        if reg.is_accept {
            return Ok(()); // listener interest is managed by arm_accept
        }
        if reg.armed && reg.interest == interest {
            return Ok(());
        }
        reg.interest = interest;
        if reg.armed {
            self.cancel_current(ridx);
        }
        if interest != Interest::NONE {
            self.arm_poll(ridx);
        }
        Ok(())
    }

    /// See [`super::Poller::deregister`]. Cancels the armed SQE and any
    /// in-flight queued writes; their buffers stay alive inside the op
    /// slab until the kernel's CQE confirms it is done with them.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let Some(ridx) = self.by_fd.remove(&fd) else {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        };
        self.stats.syscalls_saved += 1; // the epoll_ctl(DEL) this replaces
        let rgen = self.regs.gen_of(ridx).unwrap_or(0);
        self.cancel_current(ridx);
        let Some(reg) = self.regs.remove(ridx) else {
            return Ok(());
        };
        if let Some(slot) = reg.fixed_slot {
            // Clear the table slot. FILES_UPDATE executes inline in
            // submission order, so the slot is safe to hand out again
            // immediately: any reuse's own update is ordered after this.
            self.queue_files_update(slot, -1, usize::MAX, 0, false);
            self.fixed_free.push(slot);
        }
        let mut cancels = Vec::new();
        for (widx, op) in self.writes.iter_mut() {
            if op.reg_idx == ridx && op.reg_gen == rgen {
                cancels.push(pack(KIND_WRITE, widx, op.seq));
            }
        }
        for target in cancels {
            self.push_cancel(target);
        }
        Ok(())
    }

    /// Whether [`Self::queue_writev`] is available (it is, unless
    /// disabled via `SWEB_URING_NO_QWRITE=1`).
    pub fn supports_queued_write(&self) -> bool {
        self.queued_writes
    }

    /// Whether `SEND_ZC` is available (probed at setup; disabled via
    /// `SWEB_URING_NO_ZC=1`). The reactor uses this to route large
    /// bodies through the queued-write path instead of sendfile.
    pub fn supports_send_zc(&self) -> bool {
        self.send_zc_ok && self.queued_writes
    }

    /// Number of registered staging slots (0 when registration failed
    /// or `SWEB_URING_NO_BUFS=1`). Conformance tests use this to prove
    /// which wire path a run exercised.
    pub fn buf_pool_slots(&self) -> u32 {
        if self.buf_registered {
            self.buf_slots
        } else {
            0
        }
    }

    /// Queue an entire buffered response as one write op, completing
    /// via [`Event::wrote`] CQEs instead of readiness + `writev(2)`.
    ///
    /// The op picks the cheapest wire shape available: responses that
    /// fit a registered-buffer slot are *staged* — copied into the
    /// pinned pool and sent as `WRITE_FIXED` (no per-op buffer mapping,
    /// and the response `Bytes` drops immediately instead of living
    /// until the CQE); large bodies go out as `SEND_ZC` (the kernel
    /// transmits from the shared body pages, no socket-buffer copy);
    /// everything else is a plain `WRITEV`. Pool exhaustion and probe
    /// failure degrade along the same ladder, counted in
    /// [`IoStats::buf_pool_exhausted`].
    ///
    /// With `link_read` (keep-alive), the write carries `IOSQE_IO_LINK`
    /// into an immediately-queued next-request `POLL_ADD`: the
    /// write-then-await-next transition costs zero dedicated syscalls.
    /// Returns false — caller takes the classic sync path — if the fd
    /// is not registered, the op is empty, or a poll is unexpectedly
    /// still armed (a cancel would break the link chain).
    pub fn queue_writev(
        &mut self,
        fd: RawFd,
        token: usize,
        head: &mut Vec<u8>,
        body: &mut Bytes,
        link_read: bool,
    ) -> bool {
        let total = head.len() + body.len();
        if !self.queued_writes || total == 0 {
            return false;
        }
        let Some(&ridx) = self.by_fd.get(&fd) else { return false };
        let Some(rgen) = self.regs.gen_of(ridx) else { return false };
        {
            let Some(reg) = self.regs.get_mut(ridx) else { return false };
            if reg.is_accept || reg.armed {
                return false;
            }
        }
        // Stage into a registered buffer when the whole response fits a
        // slot: one copy now buys WRITE_FIXED submission and releases
        // the cache's Bytes reference immediately.
        let mut fixed_buf = None;
        if self.buf_registered && total <= BUF_SLOT {
            match self.buf_free.pop() {
                Some(slot) => {
                    let base = slot as usize * BUF_SLOT;
                    self.buf_pool[base..base + head.len()].copy_from_slice(head);
                    self.buf_pool[base + head.len()..base + total].copy_from_slice(body);
                    fixed_buf = Some(slot);
                }
                None => self.stats.buf_pool_exhausted += 1,
            }
        }
        // Large bodies (and only bodies: heads are always slot-sized)
        // ride SEND_ZC when the kernel has it.
        let send_zc = fixed_buf.is_none() && self.send_zc_ok && body.len() >= ZC_MIN_BODY;
        let (head, body) = if fixed_buf.is_some() {
            // Staged: the pool owns the bytes now. The head Vec keeps
            // its allocation on the caller's side for reuse; the body's
            // Bytes reference (and its hold on the cache entry) drops
            // right here instead of at CQE time.
            head.clear();
            *body = Bytes::new();
            (Vec::new(), Bytes::new())
        } else {
            (std::mem::take(head), std::mem::take(body))
        };
        let (widx, _) = self.writes.insert(WriteOp {
            token,
            reg_idx: ridx,
            reg_gen: rgen,
            head,
            body,
            pos: 0,
            total,
            iov: Box::new([IoVec { base: std::ptr::null(), len: 0 }; 2]),
            seq: 0,
            link_read,
            fixed_buf,
            send_zc,
            zc_pending: 0,
            finished: false,
        });
        self.submit_write(widx);
        if link_read {
            if let Some(reg) = self.regs.get_mut(ridx) {
                reg.interest = Interest::READ;
            }
            self.arm_poll(ridx);
        }
        true
    }

    /// (Re)submit a write op from its current position, as whichever of
    /// `WRITE_FIXED` / `SEND_ZC` / `WRITEV` the op's shape calls for.
    /// The first submission of a `link_read` op links into the poll
    /// that follows; short-write resubmissions are independent SQEs.
    /// A `send_zc` op's head (if any) goes out first as a `WRITEV`, the
    /// body as `SEND_ZC` once `pos` reaches it — the links-only-at-pos-0
    /// rule keeps the next-request poll from arming mid-body.
    fn submit_write(&mut self, widx: usize) {
        let seq = self.next_seq();
        let reg_idx = match self.writes.get_mut(widx) {
            Some(op) => op.reg_idx,
            None => return,
        };
        let (reg_fd, fixed_slot) = match self.regs.get(reg_idx) {
            Some(reg) => (reg.fd, reg.fixed_slot),
            None => return,
        };
        let pool_base = self.buf_pool.as_ptr() as usize;
        let Some(op) = self.writes.get_mut(widx) else { return };
        op.seq = seq;
        let mut sqe = Sqe::zeroed();
        if let Some(slot) = fixed_slot {
            sqe.fd = slot as i32;
            sqe.flags |= IOSQE_FIXED_FILE;
        } else {
            sqe.fd = reg_fd;
        }
        let mut used_fixed_buf = false;
        let mut used_zc = false;
        if let Some(bslot) = op.fixed_buf {
            sqe.opcode = IORING_OP_WRITE_FIXED;
            sqe.addr = (pool_base + bslot as usize * BUF_SLOT + op.pos) as u64;
            sqe.len = (op.total - op.pos) as u32;
            sqe.buf_index = bslot as u16;
            used_fixed_buf = true;
        } else if op.send_zc && op.pos >= op.head.len() {
            let bp = op.pos - op.head.len();
            sqe.opcode = IORING_OP_SEND_ZC;
            sqe.addr = op.body[bp..].as_ptr() as u64;
            sqe.len = (op.body.len() - bp) as u32;
            used_zc = true;
        } else {
            let mut n = 0usize;
            let hp = op.pos.min(op.head.len());
            if hp < op.head.len() {
                op.iov[n] = IoVec { base: op.head[hp..].as_ptr(), len: op.head.len() - hp };
                n += 1;
            }
            // A send_zc op defers its body to the SEND_ZC submission
            // that follows the head's completion.
            let bp = op.pos.saturating_sub(op.head.len());
            if !op.send_zc && bp < op.body.len() {
                op.iov[n] = IoVec { base: op.body[bp..].as_ptr(), len: op.body.len() - bp };
                n += 1;
            }
            sqe.opcode = IORING_OP_WRITEV;
            sqe.addr = op.iov.as_ptr() as u64;
            sqe.len = n as u32;
        }
        let link = op.link_read && op.pos == 0 && !op.send_zc;
        if link {
            sqe.flags |= IOSQE_IO_LINK;
        }
        sqe.user_data = pack(KIND_WRITE, widx, seq);
        if used_fixed_buf {
            self.stats.write_fixed += 1;
        }
        if used_zc {
            self.stats.send_zc += 1;
        }
        self.push(sqe);
    }

    /// Drain stats accumulated since the last call.
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    /// Synchronously quiesce the ring before it is dropped: cancel
    /// every in-flight operation, reap the cancellations, and
    /// unregister the fixed-file table.
    ///
    /// Without this, the kernel-held file references — the listener
    /// pinned by a multishot accept, connection fds in the fixed table —
    /// are only released by the *asynchronous* ring-teardown work that
    /// follows `close(ring_fd)`. A listener whose userspace fd is closed
    /// but whose kernel socket lingers keeps the port in `LISTEN` state
    /// for a few more milliseconds, long enough for an immediate rebind
    /// (graceful stop → revive on the same address) to race it and fail
    /// with `EADDRINUSE`.
    pub fn shutdown(&mut self) {
        let fds: Vec<RawFd> = self.by_fd.keys().copied().collect();
        for fd in fds {
            let _ = self.deregister(fd);
        }
        // Cancellation CQEs carry no countable state, so the fence is
        // two consecutive quiet waits with every write/update op freed.
        // Bounded: a wedged kernel must not hang shard teardown.
        let mut events = Vec::new();
        let mut quiet = 0;
        for _ in 0..64 {
            events.clear();
            let before = self.stats.cqe_completed;
            if self.wait(&mut events, 5).is_err() {
                break;
            }
            let busy = self.stats.cqe_completed != before
                || !self.writes.is_empty()
                || !self.updates.is_empty();
            if busy {
                quiet = 0;
            } else {
                quiet += 1;
                if quiet >= 2 {
                    break;
                }
            }
        }
        if self.fixed_table {
            // Blocks until every fixed-file reference has been dropped.
            unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    self.ring_fd as usize,
                    IORING_UNREGISTER_FILES as usize,
                    0usize,
                    0usize,
                );
            }
            self.fixed_table = false;
            self.fixed_free.clear();
        }
        if self.buf_registered {
            // Unpin the staging pool; quiesce above guarantees no
            // WRITE_FIXED still reads from it.
            unsafe {
                syscall(
                    SYS_IO_URING_REGISTER,
                    self.ring_fd as usize,
                    IORING_UNREGISTER_BUFFERS as usize,
                    0usize,
                    0usize,
                );
            }
            self.buf_registered = false;
            self.buf_free.clear();
        }
    }

    /// See [`super::Poller::wait`]: batched submit + complete. One
    /// `io_uring_enter` both submits every SQE queued since the last
    /// tick and waits for completions; if completions are already
    /// posted (or `timeout_ms == 0` finds nothing to submit), the wait
    /// costs zero syscalls.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        self.reap(&mut out);
        self.flush_backlog();
        let before = events.len();
        if !out.is_empty() || timeout_ms == 0 {
            let pending = self.sq_pending();
            // Under SQPOLL the kernel thread consumes SQEs on its own;
            // an enter is only needed to wake a parked thread or drain a
            // CQ overflow.
            let need_enter = if self.sqpoll {
                (pending > 0 && self.sq_need_wakeup()) || self.cq_overflowed()
            } else {
                pending > 0 || self.cq_overflowed()
            };
            if need_enter {
                if let Err(e) = self.enter(pending, 0, IORING_ENTER_GETEVENTS, None) {
                    self.scratch = out;
                    return Err(e);
                }
                self.reap(&mut out);
            } else {
                // Completions already in hand (or an empty non-blocking
                // poll): the whole tick was syscall-free.
                self.stats.syscalls_saved += 1;
            }
        } else {
            let pending = self.sq_pending();
            let res = if timeout_ms < 0 {
                self.enter(pending, 1, IORING_ENTER_GETEVENTS, None)
            } else {
                let ts = Timespec {
                    tv_sec: (timeout_ms / 1000) as i64,
                    tv_nsec: ((timeout_ms % 1000) as i64) * 1_000_000,
                };
                self.enter(pending, 1, IORING_ENTER_GETEVENTS, Some(&ts))
            };
            if let Err(e) = res {
                self.scratch = out;
                return Err(e);
            }
            self.reap(&mut out);
        }
        // CQE handlers may have queued re-arm SQEs; stage them so the
        // next enter submits the lot.
        self.flush_backlog();
        events.append(&mut out);
        self.scratch = out;
        Ok(events.len() - before)
    }

    /// Drain every posted CQE, translating them into [`Event`]s.
    fn reap(&mut self, out: &mut Vec<Event>) {
        loop {
            let head = unsafe { (*self.cq_khead).load(Ordering::Acquire) };
            let tail = unsafe { (*self.cq_ktail).load(Ordering::Acquire) };
            if head == tail {
                return;
            }
            let mut h = head;
            while h != tail {
                let cqe = unsafe { *self.cqes.add((h & self.cq_mask) as usize) };
                h = h.wrapping_add(1);
                unsafe { (*self.cq_khead).store(h, Ordering::Release) };
                self.stats.cqe_completed += 1;
                self.handle_cqe(cqe, out);
            }
        }
    }

    fn handle_cqe(&mut self, cqe: Cqe, out: &mut Vec<Event>) {
        let kind = (cqe.user_data >> 62) as u8;
        let idx = ((cqe.user_data >> 32) & 0x3fff_ffff) as usize;
        let seq = cqe.user_data as u32;
        match kind {
            KIND_POLL => self.on_poll_cqe(idx, seq, cqe, out),
            KIND_ACCEPT => self.on_accept_cqe(idx, seq, cqe, out),
            KIND_WRITE => self.on_write_cqe(idx, seq, cqe, out),
            _ => {
                if seq == MISC_FILES_UPDATE {
                    self.on_files_update_cqe(idx, cqe);
                }
                // MISC_CANCEL completions carry no state.
            }
        }
    }

    fn on_poll_cqe(&mut self, ridx: usize, seq: u32, cqe: Cqe, out: &mut Vec<Event>) {
        let (token, interest) = {
            let Some(reg) = self.regs.get_mut(ridx) else { return };
            if reg.seq != seq || reg.kind != KIND_POLL {
                return; // stale arm
            }
            (reg.token, reg.interest)
        };
        if cqe.res < 0 {
            let err = -cqe.res;
            if let Some(reg) = self.regs.get_mut(ridx) {
                reg.armed = false;
            }
            if err == ECANCELED {
                // A link-break cancel (failed FILES_UPDATE) or a racing
                // cancel that lost to a re-arm intent: restore the poll.
                if interest != Interest::NONE {
                    self.arm_poll(ridx);
                }
            } else if err == EINVAL && self.multishot_poll {
                // Kernel predates multishot poll: downgrade globally.
                self.multishot_poll = false;
                if interest != Interest::NONE {
                    self.arm_poll(ridx);
                }
            } else {
                out.push(Event {
                    token,
                    readable: false,
                    writable: false,
                    error: true,
                    accepted: None,
                    wrote: None,
                });
            }
            return;
        }
        let mask = cqe.res as u32;
        let more = cqe.flags & IORING_CQE_F_MORE != 0;
        if !more {
            if let Some(reg) = self.regs.get_mut(ridx) {
                reg.armed = false;
            }
        }
        out.push(Event {
            token,
            readable: mask & (POLLIN | POLLHUP | POLLRDHUP) != 0,
            writable: mask & POLLOUT != 0,
            error: mask & POLLERR != 0,
            accepted: None,
            wrote: None,
        });
        if !more && interest != Interest::NONE {
            // Oneshot consumed: re-arm. POLL_ADD's arm-time readiness
            // check keeps this level-triggered.
            self.arm_poll(ridx);
        }
    }

    fn on_accept_cqe(&mut self, ridx: usize, seq: u32, cqe: Cqe, out: &mut Vec<Event>) {
        let token = {
            let Some(reg) = self.regs.get_mut(ridx) else {
                // Listener gone (parked/shutdown): the kernel already
                // accepted this connection — close it, never leak it.
                if cqe.res >= 0 {
                    unsafe { close(cqe.res) };
                }
                return;
            };
            if reg.seq != seq || reg.kind != KIND_ACCEPT {
                if cqe.res >= 0 {
                    unsafe { close(cqe.res) };
                }
                return;
            }
            reg.token
        };
        if cqe.res < 0 {
            let err = -cqe.res;
            if let Some(reg) = self.regs.get_mut(ridx) {
                reg.armed = false;
            }
            if err == ECANCELED {
                return;
            }
            if err == EINVAL || err == EOPNOTSUPP {
                // Kernel predates multishot accept: downgrade to
                // readiness polling + the loop's accept(2) path.
                self.multishot_accept = false;
                self.arm_accept(ridx);
                return;
            }
            // Transient accept failure (the errno was consumed by the
            // CQE): re-arm, and surface plain readability so the loop's
            // accept(2) path observes the condition and applies its
            // backoff/park policy.
            self.arm_accept(ridx);
            out.push(Event {
                token,
                readable: true,
                writable: false,
                error: false,
                accepted: None,
                wrote: None,
            });
            return;
        }
        self.stats.syscalls_saved += 1; // the accept(2) this replaces
        let more = cqe.flags & IORING_CQE_F_MORE != 0;
        if !more {
            if let Some(reg) = self.regs.get_mut(ridx) {
                reg.armed = false;
            }
        }
        out.push(Event {
            token,
            readable: true,
            writable: false,
            error: false,
            accepted: Some(cqe.res),
            wrote: None,
        });
        if !more {
            self.arm_accept(ridx);
        }
    }

    /// The op's data path is over (completed, failed, or the connection
    /// died): free it now unless `SEND_ZC` notifications are still
    /// outstanding — the kernel reads the body pages until every notif
    /// lands, so the op (and its buffers) must outlive them.
    fn finish_write(&mut self, widx: usize) {
        let remove = {
            let Some(op) = self.writes.get_mut(widx) else { return };
            op.finished = true;
            op.zc_pending == 0
        };
        if remove {
            self.release_write(widx);
        }
    }

    /// Actually free a write op, returning its staging slot to the pool.
    fn release_write(&mut self, widx: usize) {
        if let Some(op) = self.writes.remove(widx) {
            if let Some(slot) = op.fixed_buf {
                self.buf_free.push(slot);
            }
        }
    }

    fn on_write_cqe(&mut self, widx: usize, seq: u32, cqe: Cqe, out: &mut Vec<Event>) {
        if cqe.flags & IORING_CQE_F_NOTIF != 0 {
            // SEND_ZC buffer-release notification. Matched by op index,
            // not seq: a short-send resubmission bumps the seq while the
            // prior submission's notif is still in flight, and every one
            // of them must be drained before the buffers can go. The op
            // is never removed with zc_pending > 0, so the index cannot
            // have been reused.
            let remove = {
                let Some(op) = self.writes.get_mut(widx) else { return };
                op.zc_pending = op.zc_pending.saturating_sub(1);
                op.finished && op.zc_pending == 0
            };
            if remove {
                self.release_write(widx);
            }
            return;
        }
        let (reg_idx, reg_gen, token) = {
            let Some(op) = self.writes.get_mut(widx) else { return };
            if op.seq != seq {
                return; // stale resubmission
            }
            // A SEND_ZC result CQE with F_MORE promises a notif CQE for
            // this submission; count it before any early return below.
            if cqe.flags & IORING_CQE_F_MORE != 0 {
                op.zc_pending += 1;
            }
            (op.reg_idx, op.reg_gen, op.token)
        };
        if self.regs.gen_of(reg_idx) != Some(reg_gen) {
            // Connection died while the write was in flight; the result
            // CQE means the data path is over (any ZC notifs still
            // gate the actual free).
            self.finish_write(widx);
            return;
        }
        if cqe.res < 0 {
            let err = -cqe.res;
            if err == EAGAIN || err == EINTR {
                self.submit_write(widx);
                return;
            }
            self.finish_write(widx);
            out.push(Event {
                token,
                readable: false,
                writable: false,
                error: false,
                accepted: None,
                wrote: Some(cqe.res),
            });
            return;
        }
        self.stats.syscalls_saved += 1; // the writev(2)/sendfile this replaces
        let (done, zc_sent) = {
            let Some(op) = self.writes.get_mut(widx) else { return };
            let in_body = op.send_zc && op.pos >= op.head.len();
            op.pos += cqe.res as usize;
            (op.pos >= op.total, in_body && cqe.res > 0)
        };
        if zc_sent {
            // One completed SEND_ZC = one socket-buffer copy a plain
            // send would have paid.
            self.stats.zc_copies_avoided += 1;
        }
        out.push(Event {
            token,
            readable: false,
            writable: false,
            error: false,
            accepted: None,
            wrote: Some(cqe.res),
        });
        if done {
            self.finish_write(widx);
        } else {
            self.submit_write(widx);
        }
    }

    fn on_files_update_cqe(&mut self, uidx: usize, cqe: Cqe) {
        let Some(up) = self.updates.remove(uidx) else { return };
        if cqe.res >= 1 || up.reg_idx == usize::MAX {
            return; // install succeeded, or a clear (no rollback needed)
        }
        // Install failed: strip the slot from the registration (its
        // linked poll was cancelled and re-arms against the plain fd)
        // and put the slot back in the pool.
        if self.regs.gen_of(up.reg_idx) == Some(up.reg_gen) {
            let slot = self.regs.get_mut(up.reg_idx).and_then(|reg| reg.fixed_slot.take());
            if let Some(slot) = slot {
                self.fixed_free.push(slot);
            }
        }
    }
}

impl Drop for UringPoller {
    fn drop(&mut self) {
        // Closing the ring fd cancels in-flight ops, but teardown is
        // asynchronous: leak any op buffers the kernel might still read
        // rather than risk a use-after-free. The staging pool goes the
        // same way: with writes in flight a WRITE_FIXED may still read
        // from it, so it leaks alongside them; otherwise it frees
        // normally (the kernel's pin is by page refcount, not address).
        unsafe { close(self.ring_fd) };
        if !self.writes.is_empty() {
            std::mem::forget(std::mem::take(&mut self.buf_pool));
        }
        for (_, op) in self.writes.drain_all() {
            std::mem::forget(op);
        }
        for (_, op) in self.updates.drain_all() {
            std::mem::forget(op);
        }
        unsafe {
            munmap(self.sqes as *mut u8, self.sqes_len);
            munmap(self.ring, self.ring_len);
        }
    }
}
