//! # sweb-reactor — an event-driven connection engine
//!
//! The 1996 SWEB design (NCSA httpd lineage) dedicates one process or
//! thread to each connection; §4.3 of the paper measures precisely that
//! overhead ("the overhead for the threads package") eating into
//! scheduling gains. This crate is the modern counterpoint the paper
//! anticipates: one readiness loop multiplexing every connection through
//! a per-connection state machine, so concurrency is bounded by memory
//! rather than by threads.
//!
//! Architecture (one reactor = one loop thread + a bounded worker pool):
//!
//! ```text
//!        accept ──▶ [admission: cap or 503] ──▶ Reading ──▶ ReadingBody
//!                                                  │ parse (incremental)
//!                                                  ▼
//!        workers ◀── dispatch ────────────── Dispatched
//!           │  respond() (blocking file I/O off the loop)
//!           ▼
//!        completion queue ──wakeup──▶ Writing ──▶ close | keep-alive ↺
//! ```
//!
//! * **Events** come from [`sys::Poller`] — epoll readiness on Linux,
//!   poll(2) everywhere (force with `SWEB_REACTOR_POLL=1`), or
//!   completion-based io_uring ([`sys::uring`], select with
//!   `SWEB_IO_BACKEND=uring` / [`ReactorConfig::io_backend`]): multishot
//!   accept delivers already-accepted fds, buffered responses drain as
//!   queued `WRITEV` completions with the next-request poll linked
//!   behind them, and a whole loop tick costs at most one syscall.
//! * **Parsing is incremental**: partial reads accumulate in a carry
//!   buffer and [`sweb_http::try_parse_request`] distinguishes "need more
//!   bytes" from "can never parse" without re-scanning cost blowups.
//! * **Timeouts** ride a hashed [`timer::TimerWheel`] with lazy
//!   cancellation: slow or idle clients are evicted without per-timer
//!   bookkeeping and without ever blocking healthy connections.
//! * **Blocking work** (file reads, CGI) runs on a bounded
//!   [`workers::WorkerPool`]; a full queue sheds (503) instead of
//!   queueing unboundedly.
//! * **Transmit is zero-copy**: responses drain as head bytes plus a
//!   shared [`Bytes`] body gathered by `writev(2)` (no per-request body
//!   copy), and large [`FileBody`] payloads stream in-kernel via
//!   `sendfile(2)` with partial-write resumption — the write deadline
//!   re-arms on progress so slow-but-live readers of big files survive.
//! * **Admission control**: beyond `max_conns` the reactor answers 503
//!   immediately. The application observes connection counts through
//!   [`App`] hooks and feeds them into its advertised load vector, so an
//!   overloaded node repels the cluster's scheduler as §3.3's `A+d(A+O)`
//!   model intends.

#![warn(missing_docs)]

pub mod slab;
pub mod sys;
pub mod timer;
pub mod workers;

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use sweb_http::{try_parse_request, Method, Request, Response, StatusCode};
use sweb_telemetry::{Phase, RequestDeadline};

use slab::Slab;
use sys::{Event, Interest, Poller};
use timer::{TimerEntry, TimerWheel};
use workers::WorkerPool;

pub use sys::{IoBackend, IoStats};

/// A file payload to stream instead of an in-memory body: the open fd
/// travels through the connection state machine and is drained with
/// `sendfile(2)` (or, where unavailable, materialized on a worker
/// thread). The reactor sets `Content-Length` from `len`.
#[derive(Debug)]
pub struct FileBody {
    /// Open file positioned at the start of the payload.
    pub file: std::fs::File,
    /// Bytes to transmit (the advertised `Content-Length`).
    pub len: u64,
}

/// What [`App::respond`] produces: a response head/body plus an optional
/// file payload that replaces the in-memory body on the wire.
#[derive(Debug)]
pub struct Reply {
    /// Status, headers and (unless `file` is set) the body.
    pub response: Response,
    /// When set, the wire body is streamed from this file; any in-memory
    /// `response.body` is ignored.
    pub file: Option<FileBody>,
}

impl From<Response> for Reply {
    fn from(response: Response) -> Reply {
        Reply { response, file: None }
    }
}

/// Verdict from [`App::accept_gate`], consulted before each accept burst.
/// Lets the application (or a fault injector riding inside it) throttle
/// the listener without owning the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptGate {
    /// Accept normally.
    Proceed,
    /// Don't accept right now; re-check after a short park. Pending
    /// connections wait in the kernel backlog.
    Pause,
    /// Treat the accept as if the process were out of file descriptors
    /// (synthetic `EMFILE`): report the error and back off.
    FailFd,
}

/// What the reactor serves. `respond` runs on a **worker thread** (it may
/// block on disk); every hook runs on the event-loop thread and must be
/// cheap and non-blocking (counter bumps).
pub trait App: Send + Sync + 'static {
    /// Produce the response for one parsed request.
    fn respond(&self, peer: &str, req: &Request, body: &[u8]) -> Reply;

    /// Consulted before each accept burst; see [`AcceptGate`].
    fn accept_gate(&self) -> AcceptGate {
        AcceptGate::Proceed
    }
    /// A request missed a phase checkpoint of its
    /// [`RequestDeadline`] and was
    /// answered 503 (or evicted) instead of being allowed to hang.
    fn on_deadline_overrun(&self) {}
    /// A connection reached `accept` (before admission control).
    fn on_accept(&self) {}
    /// A connection was admitted and is now tracked.
    fn on_conn_open(&self) {}
    /// A tracked connection closed (any reason).
    fn on_conn_close(&self) {}
    /// A connection was refused with 503 (admission cap or full workers).
    fn on_shed(&self) {}
    /// A connection was evicted by the timer wheel (read/write deadline).
    fn on_evict(&self) {}
    /// A request failed to parse and was answered 400.
    fn on_bad_request(&self) {}
    /// `accept(2)` itself failed (not `WouldBlock`); the listener backs
    /// off exponentially.
    fn on_accept_error(&self, _err: &io::Error) {}
    /// A response write began (`bytes` = wire size), for in-flight
    /// accounting.
    fn on_write_start(&self, _bytes: usize) {}
    /// The matching end of [`App::on_write_start`].
    fn on_write_end(&self, _bytes: usize) {}
    /// A response body was queued for zero-copy transmit from a shared
    /// `Bytes` handle (`bytes` = body length; no user-space body copy).
    fn on_zero_copy(&self, _bytes: usize) {}
    /// A file payload was queued for `sendfile(2)` streaming (`bytes` =
    /// file length).
    fn on_sendfile(&self, _bytes: usize) {}
    /// One request phase finished on this engine: accept (admission
    /// hand-off), parse (first byte to dispatched request), or write
    /// (response queued to socket drained). The decide/fetch phases are
    /// measured inside [`App::respond`] by the application itself.
    fn on_phase(&self, _phase: Phase, _micros: u64) {}
    /// This app's event loop is about to start polling (called on the
    /// loop thread). With [`spawn_sharded`], each shard's app hears its
    /// own loop come up — the hook marks the shard live.
    fn on_shard_start(&self) {}
    /// The matching end of [`App::on_shard_start`]: the loop has drained
    /// its connections and is exiting (shutdown or loop error).
    fn on_shard_stop(&self) {}
    /// Reports which I/O backend this shard's loop actually runs on
    /// (`"uring"`, `"epoll"`, or `"poll"`) — after any startup fallback.
    /// Called once on the loop thread, before [`App::on_shard_start`]'s
    /// loop begins polling.
    fn on_io_backend(&self, _backend: &'static str) {}
    /// Periodic flush of the poller's syscall accounting ([`IoStats`]),
    /// called on the loop thread whenever a tick did I/O work. Deltas,
    /// not totals: sum them into counters.
    fn on_io_stats(&self, _stats: IoStats) {}
    /// How long one request sat in the worker submission queue before a
    /// worker picked it up (called on the worker thread, just before
    /// `respond`). This is the *sojourn time* an adaptive admission
    /// controller feeds on: a standing queue here means the node is past
    /// capacity no matter what the connection count says.
    fn on_queue_sojourn(&self, _micros: u64) {}
    /// `Retry-After` seconds for every 503 this reactor emits (admission
    /// cap, full worker queue, missed deadline). Applications derive it
    /// from live load; the default matches the old fixed header.
    fn retry_after_secs(&self) -> u64 {
        1
    }
}

/// How the reactor turns a [`Response`] into wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitMode {
    /// Baseline: one contiguous buffer per response — the body is copied
    /// after serialization (what `to_bytes` always did). Kept for
    /// benchmark comparison.
    Copy,
    /// Head buffer + shared `Bytes` body handle, gathered at the socket
    /// (`writev`), so cached bodies transmit with zero per-request copies.
    ZeroCopy,
}

/// Tuning knobs for one reactor instance.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Admission cap: connections beyond this are answered 503.
    /// [`spawn_sharded`] divides this node-wide total evenly per shard.
    pub max_conns: usize,
    /// Worker threads for blocking fulfilment. Defaults to
    /// [`default_workers`] (the machine's `available_parallelism()`
    /// clamped to `[4, 32]`; override with `SWEB_REACTOR_WORKERS`).
    /// [`spawn_sharded`] divides this node-wide total evenly per shard.
    pub workers: usize,
    /// Bounded depth of the worker submission queue (divided per shard by
    /// [`spawn_sharded`]).
    pub worker_queue: usize,
    /// Evict a connection that produces no complete request for this long.
    pub read_timeout: Duration,
    /// Evict a connection that accepts no response bytes for this long.
    pub write_timeout: Duration,
    /// Maximum requests served over one keep-alive connection.
    pub keepalive_limit: u32,
    /// Timer wheel ring size (slots).
    pub timer_slots: usize,
    /// Timer wheel tick, ms (eviction resolution).
    pub timer_tick_ms: u64,
    /// Body serialization shape (zero-copy vs contiguous baseline).
    pub transmit: TransmitMode,
    /// Gather head+body with `writev(2)`; when false, the portable
    /// sequential two-write fallback is used (still zero-copy).
    pub use_writev: bool,
    /// Stream [`FileBody`] payloads with `sendfile(2)` on the loop
    /// thread; when false (or on platforms without it), file payloads are
    /// materialized on a worker thread instead.
    pub use_sendfile: bool,
    /// Wall-clock budget for one request (first byte to response
    /// drained). Phase checkpoints are derived from it via
    /// [`RequestDeadline`]; a request
    /// missing one is answered 503 + `Retry-After` (or evicted mid-write)
    /// instead of hanging its client.
    pub request_budget: Duration,
    /// Force [`spawn_sharded`]'s single-acceptor hand-off path even where
    /// `SO_REUSEPORT` is available (also forced by the
    /// `SWEB_REACTOR_NO_REUSEPORT=1` environment variable). Exists so
    /// tests exercise the portable fallback deterministically; ignored by
    /// single-shard reactors.
    pub force_handoff_accept: bool,
    /// Which event backend each shard's [`sys::Poller`] should use.
    /// Defaults to [`IoBackend::from_env`] (`SWEB_IO_BACKEND`, then the
    /// legacy `SWEB_REACTOR_POLL=1`, then epoll). `Uring` and `Auto` fall
    /// back to epoll when the kernel lacks io_uring support.
    pub io_backend: IoBackend,
    /// Registered-buffer staging pool budget per shard, bytes (io_uring
    /// only; 0 disables registration). Servers size this off the file
    /// cache's per-segment share so the pool tracks the hot working set.
    pub uring_buf_pool_bytes: usize,
}

/// Default worker-pool size: `SWEB_REACTOR_WORKERS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// clamped to `[4, 32]` — the old fixed constant (4) is the floor, so
/// small machines behave exactly as before, while larger ones stop
/// serializing blocking fulfilment behind four threads.
pub fn default_workers() -> usize {
    if let Some(n) =
        std::env::var("SWEB_REACTOR_WORKERS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(4, 32)
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_conns: 1024,
            workers: default_workers(),
            worker_queue: 512,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            keepalive_limit: 64,
            timer_slots: 256,
            timer_tick_ms: 20,
            transmit: TransmitMode::ZeroCopy,
            use_writev: true,
            use_sendfile: true,
            request_budget: Duration::from_secs(10),
            force_handoff_accept: false,
            io_backend: IoBackend::from_env(),
            uring_buf_pool_bytes: default_uring_buf_pool(),
        }
    }
}

/// Default registered-buffer pool budget per shard.
#[cfg(target_os = "linux")]
fn default_uring_buf_pool() -> usize {
    sys::uring::DEFAULT_BUF_POOL
}

#[cfg(not(target_os = "linux"))]
fn default_uring_buf_pool() -> usize {
    0
}

/// Largest accepted POST body (mirrors the threaded engine).
const MAX_BODY_BYTES: u64 = 1 << 20;

/// Largest file body the loop will materialize for a `SEND_ZC` transmit
/// instead of streaming with `sendfile(2)`. The zero-copy send rides
/// the ring (no per-chunk syscall + readiness round trip), but the
/// worker pays one read into memory — bounded here so a multi-GiB
/// response cannot balloon the heap.
const ZC_FILE_MAX: u64 = 4 << 20;

/// Reserved poller tokens.
const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKEUP: usize = 1;
const TOKEN_BASE: usize = 2;

/// A running reactor: join handle plus identity.
pub struct ReactorHandle {
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
    /// Address the reactor is listening on.
    pub addr: SocketAddr,
    /// I/O backend in use (`"uring"`, `"epoll"`, or `"poll"`).
    pub backend: &'static str,
}

impl ReactorHandle {
    /// Wait for the loop thread to exit (after `shutdown` was flagged).
    pub fn join(mut self) -> io::Result<()> {
        match self.thread.take() {
            Some(t) => t.join().unwrap_or_else(|_| {
                Err(io::Error::other("reactor thread panicked"))
            }),
            None => Ok(()),
        }
    }
}

/// Spawn a reactor serving `app` on `listener`. The loop runs until
/// `shutdown` is set (checked at least once per timer tick).
pub fn spawn(
    listener: TcpListener,
    app: Arc<dyn App>,
    cfg: ReactorConfig,
    shutdown: Arc<AtomicBool>,
) -> io::Result<ReactorHandle> {
    let addr = listener.local_addr()?;
    let (handle, _doorbell) = spawn_shard(Some(listener), app, cfg, shutdown, None, addr, 0)?;
    Ok(handle)
}

/// Accepted connections waiting for a shard that doesn't own a listener
/// (the portable accept fallback).
type Handoff = Arc<Mutex<VecDeque<TcpStream>>>;

/// Spawn one shard's loop thread. `listener` is `None` in hand-off mode,
/// where `handoff` carries accepted streams in; the returned doorbell
/// socket wakes the loop after a push.
fn spawn_shard(
    listener: Option<TcpListener>,
    app: Arc<dyn App>,
    cfg: ReactorConfig,
    shutdown: Arc<AtomicBool>,
    handoff: Option<Handoff>,
    addr: SocketAddr,
    shard: usize,
) -> io::Result<(ReactorHandle, Arc<UdpSocket>)> {
    if let Some(l) = &listener {
        l.set_nonblocking(true)?;
    }
    #[cfg(target_os = "linux")]
    let poller = Poller::with_backend_and_pool(cfg.io_backend, cfg.uring_buf_pool_bytes)?;
    #[cfg(not(target_os = "linux"))]
    let poller = Poller::with_backend(cfg.io_backend)?;
    let backend = poller.backend();

    // Self-addressed UDP socket: the workers' (and acceptor's) doorbell
    // into the loop.
    let wakeup_rx = UdpSocket::bind("127.0.0.1:0")?;
    wakeup_rx.set_nonblocking(true)?;
    wakeup_rx.connect(wakeup_rx.local_addr()?)?;
    let wakeup_tx = Arc::new(wakeup_rx.try_clone()?);
    let doorbell = Arc::clone(&wakeup_tx);

    let thread = std::thread::Builder::new()
        .name(format!("sweb-reactor-{}-s{shard}", addr.port()))
        .spawn(move || {
            Loop::new(listener, app, cfg, shutdown, poller, wakeup_rx, wakeup_tx, handoff).run()
        })?;

    Ok((ReactorHandle { thread: Some(thread), addr, backend }, doorbell))
}

/// A running sharded reactor: per-shard loop handles, plus the fallback
/// acceptor thread when the kernel isn't distributing accepts.
pub struct ShardedHandle {
    shards: Vec<ReactorHandle>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    /// Address the shard group is listening on.
    pub addr: SocketAddr,
    /// I/O backend in use (`"uring"`, `"epoll"`, or `"poll"`).
    pub backend: &'static str,
    /// How accepts reach the shards: `"single"` (one shard owns the only
    /// listener), `"reuseport"` (one `SO_REUSEPORT` listener per shard,
    /// kernel-distributed), or `"handoff"` (one acceptor thread
    /// round-robining streams into per-shard queues).
    pub accept_mode: &'static str,
}

impl ShardedHandle {
    /// Number of shard loops.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Wait for the acceptor (if any) and every shard loop to exit (after
    /// `shutdown` was flagged). Returns the first shard error, if any.
    pub fn join(mut self) -> io::Result<()> {
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        let mut result = Ok(());
        for shard in self.shards.drain(..) {
            if let Err(e) = shard.join() {
                result = Err(e);
            }
        }
        result
    }
}

/// Spawn `apps.len()` reactor shards all serving the same port. `cfg`
/// describes the node-wide totals: `max_conns`, `workers`, and
/// `worker_queue` are divided evenly across shards (each at least 1), so
/// a sharded node has the same aggregate budgets as a single-loop one.
///
/// With one app this is exactly [`spawn`]. With several, each shard binds
/// its own `SO_REUSEPORT` listener on the shared port and the kernel
/// distributes accepts — `listener` itself must have been bound with
/// [`sys::bind_reuseport`] so later group members can join. Where that
/// isn't possible (non-Linux, `SWEB_REACTOR_NO_REUSEPORT=1`, or
/// [`ReactorConfig::force_handoff_accept`]), a single acceptor thread
/// owns the listener and hands accepted streams round-robin to per-shard
/// queues, ringing each shard's doorbell socket.
pub fn spawn_sharded(
    listener: TcpListener,
    apps: Vec<Arc<dyn App>>,
    cfg: ReactorConfig,
    shutdown: Arc<AtomicBool>,
) -> io::Result<ShardedHandle> {
    assert!(!apps.is_empty(), "spawn_sharded needs at least one shard app");
    let n = apps.len();
    let addr = listener.local_addr()?;
    let shard_cfg = ReactorConfig {
        max_conns: (cfg.max_conns / n).max(1),
        workers: (cfg.workers / n).max(1),
        worker_queue: (cfg.worker_queue / n).max(1),
        ..cfg
    };

    if n == 1 {
        let app = apps.into_iter().next().unwrap();
        let (handle, _) = spawn_shard(Some(listener), app, shard_cfg, shutdown, None, addr, 0)?;
        let backend = handle.backend;
        return Ok(ShardedHandle {
            shards: vec![handle],
            acceptor: None,
            addr,
            backend,
            accept_mode: "single",
        });
    }

    let force_handoff = shard_cfg.force_handoff_accept
        || std::env::var_os("SWEB_REACTOR_NO_REUSEPORT").is_some_and(|v| v == "1");

    // Happy path: one SO_REUSEPORT listener per shard, kernel-distributed
    // accepts. Any bind failure (non-Linux; `listener` not itself bound
    // with the flag) abandons the group and falls back to hand-off.
    let mut extra: Vec<TcpListener> = Vec::new();
    if !force_handoff {
        for _ in 1..n {
            match sys::bind_reuseport(addr) {
                Ok(l) => extra.push(l),
                Err(_) => {
                    extra.clear();
                    break;
                }
            }
        }
    }

    if extra.len() == n - 1 {
        let mut listeners = vec![listener];
        listeners.append(&mut extra);
        let mut shards = Vec::with_capacity(n);
        let mut backend = "";
        for (shard, (l, app)) in listeners.into_iter().zip(apps).enumerate() {
            let (handle, _) = spawn_shard(
                Some(l),
                app,
                shard_cfg.clone(),
                Arc::clone(&shutdown),
                None,
                addr,
                shard,
            )?;
            backend = handle.backend;
            shards.push(handle);
        }
        return Ok(ShardedHandle {
            shards,
            acceptor: None,
            addr,
            backend,
            accept_mode: "reuseport",
        });
    }

    // Portable fallback: shards own no listener; one acceptor thread
    // distributes streams round-robin and rings each shard's doorbell.
    let acceptor_apps = apps.clone();
    let mut shards = Vec::with_capacity(n);
    let mut handoffs: Vec<Handoff> = Vec::with_capacity(n);
    let mut doorbells = Vec::with_capacity(n);
    let mut backend = "";
    for (shard, app) in apps.into_iter().enumerate() {
        let handoff: Handoff = Arc::new(Mutex::new(VecDeque::new()));
        let (handle, doorbell) = spawn_shard(
            None,
            app,
            shard_cfg.clone(),
            Arc::clone(&shutdown),
            Some(Arc::clone(&handoff)),
            addr,
            shard,
        )?;
        backend = handle.backend;
        shards.push(handle);
        handoffs.push(handoff);
        doorbells.push(doorbell);
    }
    listener.set_nonblocking(true)?;
    let stop = Arc::clone(&shutdown);
    let acceptor = std::thread::Builder::new()
        .name(format!("sweb-acceptor-{}", addr.port()))
        .spawn(move || acceptor_loop(listener, acceptor_apps, handoffs, doorbells, stop))?;
    Ok(ShardedHandle {
        shards,
        acceptor: Some(acceptor),
        addr,
        backend,
        accept_mode: "handoff",
    })
}

/// The fallback acceptor: owns the only listener, consults shard 0's
/// accept gate (chaos pause / fd-pressure, same semantics as the in-loop
/// accept path), and deals accepted streams round-robin into the shard
/// hand-off queues.
fn acceptor_loop(
    listener: TcpListener,
    apps: Vec<Arc<dyn App>>,
    handoffs: Vec<Handoff>,
    doorbells: Vec<Arc<UdpSocket>>,
    shutdown: Arc<AtomicBool>,
) {
    let n = handoffs.len();
    let mut rr = 0usize;
    let mut error_streak: u32 = 0;
    let backoff = |streak: &mut u32, e: &io::Error, app: &Arc<dyn App>| {
        app.on_accept_error(e);
        *streak = streak.saturating_add(1);
        let ms = 5u64.saturating_mul(1 << (*streak).min(8)).min(1000);
        std::thread::sleep(Duration::from_millis(ms));
    };
    while !shutdown.load(Ordering::Relaxed) {
        match apps[0].accept_gate() {
            AcceptGate::Proceed => {}
            AcceptGate::Pause => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            AcceptGate::FailFd => {
                let e = io::Error::from_raw_os_error(24);
                backoff(&mut error_streak, &e, &apps[0]);
                continue;
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                error_streak = 0;
                let t = rr % n;
                rr = rr.wrapping_add(1);
                apps[t].on_accept();
                {
                    let mut q = match handoffs[t].lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    q.push_back(stream);
                }
                let _ = doorbells[t].send(&[1]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => backoff(&mut error_streak, &e, &apps[0]),
        }
    }
}

/// Per-connection protocol position.
enum ConnState {
    /// Accumulating bytes of a request head.
    Reading,
    /// Head parsed; accumulating `need` bytes of POST body.
    ReadingBody { req: Box<Request>, need: usize },
    /// A worker owns the request; the loop ignores the socket (except
    /// errors) until the completion arrives.
    Dispatched,
    /// Draining the serialized response.
    Writing,
}

/// An in-flight `sendfile` transfer: the open fd rides the connection
/// until `offset` reaches `end`, resuming across EAGAIN round-trips.
struct FileTx {
    file: std::fs::File,
    offset: u64,
    end: u64,
}

/// One tracked connection.
struct Conn {
    stream: TcpStream,
    peer: String,
    state: ConnState,
    /// Read accumulator; may hold pipelined bytes beyond one request.
    carry: Vec<u8>,
    /// Serialized status line + headers (per-response allocation).
    out_head: Vec<u8>,
    /// Body as a shared handle (refcount clone of the cache's buffer, or
    /// empty when the head already contains the body / a file follows).
    out_body: Bytes,
    /// Combined transmit offset across `out_head` ‖ `out_body`.
    out_pos: usize,
    /// File payload streamed after the buffered part, if any.
    out_file: Option<FileTx>,
    /// Planned wire size (head + body + file), for in-flight accounting.
    out_planned: usize,
    keep_alive: bool,
    /// Close after the in-progress write (protocol errors, shed).
    rounds: u32,
    /// Current eviction deadline (reactor ms); timer entries must match
    /// this exactly to act — anything else is a stale wheel entry.
    deadline_ms: u64,
    interest: Interest,
    /// When the first byte of the in-progress request arrived (parse
    /// phase start); `None` between requests.
    req_started: Option<Instant>,
    /// When the in-progress response was queued (write phase start).
    write_started: Option<Instant>,
    /// Absolute cutoff (reactor ms) from the request's
    /// [`RequestDeadline`]: write deadlines are clamped to it so a
    /// response that can't drain inside the budget is evicted at the
    /// budget, not at the rolling write timeout.
    budget_deadline_ms: Option<u64>,
    /// The in-progress response was handed to the uring backend as a
    /// queued `WRITEV`; progress arrives as completion events
    /// ([`Event::wrote`]) instead of writable readiness.
    uring_write: bool,
    /// A readable edge arrived while a queued write was still draining
    /// (the linked read-poll completing early): service it right after
    /// the write finishes instead of waiting for another poll cycle.
    pending_read: bool,
}

/// A finished `respond` call coming back from the worker pool.
struct Completion {
    token: usize,
    gen: u64,
    head: Vec<u8>,
    body: Bytes,
    file: Option<FileTx>,
    keep_alive: bool,
}

struct Loop {
    /// `None` in hand-off mode: accepts arrive via `handoff` instead.
    listener: Option<TcpListener>,
    app: Arc<dyn App>,
    cfg: ReactorConfig,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
    wakeup_rx: UdpSocket,
    wakeup_tx: Arc<UdpSocket>,
    /// Streams dealt to this shard by the fallback acceptor thread.
    handoff: Option<Handoff>,
    conns: Slab<Conn>,
    wheel: TimerWheel,
    pool: WorkerPool,
    completions: Arc<Mutex<Vec<Completion>>>,
    start: Instant,
    /// Accept failure streak, for exponential listener backoff.
    accept_errors: u32,
    /// When set, the listener is deregistered until this reactor-ms time.
    listener_parked_until: Option<u64>,
}

impl Loop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: Option<TcpListener>,
        app: Arc<dyn App>,
        cfg: ReactorConfig,
        shutdown: Arc<AtomicBool>,
        poller: Poller,
        wakeup_rx: UdpSocket,
        wakeup_tx: Arc<UdpSocket>,
        handoff: Option<Handoff>,
    ) -> Loop {
        let wheel = TimerWheel::new(cfg.timer_slots, cfg.timer_tick_ms);
        let pool = WorkerPool::new(cfg.workers, cfg.worker_queue, "sweb");
        Loop {
            listener,
            app,
            cfg,
            shutdown,
            poller,
            wakeup_rx,
            wakeup_tx,
            handoff,
            conns: Slab::new(),
            wheel,
            pool,
            completions: Arc::new(Mutex::new(Vec::new())),
            start: Instant::now(),
            accept_errors: 0,
            listener_parked_until: None,
        }
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn run(mut self) -> io::Result<()> {
        self.app.on_io_backend(self.poller.backend());
        self.app.on_shard_start();
        let result = self.run_inner();

        // Drain: close every connection, then join the workers.
        for (_, conn) in self.conns.drain_all() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.app.on_conn_close();
        }
        // Quiesce the poller (a no-op for readiness backends) so the
        // listener port is genuinely free the moment this shard exits —
        // io_uring would otherwise release its kernel-held file
        // references asynchronously, racing an immediate rebind.
        self.poller.shutdown();
        self.pool.shutdown();
        self.app.on_shard_stop();
        result
    }

    fn run_inner(&mut self) -> io::Result<()> {
        if let Some(fd) = self.listener.as_ref().map(|l| l.as_raw_fd()) {
            // Under uring this arms a multishot accept: completions carry
            // already-accepted fds and no accept(2) is ever issued.
            self.poller.register_accept(fd, TOKEN_LISTENER)?;
        }
        self.poller.register(self.wakeup_rx.as_raw_fd(), TOKEN_WAKEUP, Interest::READ)?;

        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut expired: Vec<TimerEntry> = Vec::new();
        while !self.shutdown.load(Ordering::Relaxed) {
            let now = self.now_ms();
            let timeout = self.wheel.ms_to_next_tick(now).clamp(1, 50) as i32;
            self.poller.wait(&mut events, timeout)?;

            for ev in events.clone() {
                match ev.token {
                    TOKEN_LISTENER => match ev.accepted {
                        Some(fd) => self.accept_incoming(fd),
                        None => self.accept_ready(),
                    },
                    TOKEN_WAKEUP => self.drain_wakeup(),
                    t => self.conn_event(t - TOKEN_BASE, ev),
                }
            }

            // Checked every iteration, not only on a doorbell event: a
            // dropped wakeup datagram must not strand a handed-off stream.
            self.drain_handoff();
            self.drain_completions();

            let now = self.now_ms();
            self.wheel.advance(now, &mut expired);
            for e in expired.drain(..) {
                self.expire(e);
            }

            if let Some(until) = self.listener_parked_until {
                if now >= until {
                    self.listener_parked_until = None;
                    if let Some(fd) = self.listener.as_ref().map(|l| l.as_raw_fd()) {
                        self.poller.register_accept(fd, TOKEN_LISTENER)?;
                    }
                }
            }

            let stats = self.poller.take_stats();
            if !stats.is_zero() {
                self.app.on_io_stats(stats);
            }
        }
        Ok(())
    }

    // -------------------------------------------------- accept + admission

    fn accept_ready(&mut self) {
        let Some(listener_fd) = self.listener.as_ref().map(|l| l.as_raw_fd()) else {
            return;
        };
        match self.app.accept_gate() {
            AcceptGate::Proceed => {}
            AcceptGate::Pause => {
                // Hold the backlog: park the listener briefly and re-check
                // the gate on the way back in.
                let _ = self.poller.deregister(listener_fd);
                self.listener_parked_until = Some(self.now_ms() + 20);
                return;
            }
            AcceptGate::FailFd => {
                // Synthetic EMFILE: exercise the same backoff path a real
                // fd-exhausted process would take.
                let e = io::Error::from_raw_os_error(24);
                self.app.on_accept_error(&e);
                self.accept_errors = self.accept_errors.saturating_add(1);
                let backoff = 5u64.saturating_mul(1 << self.accept_errors.min(8)).min(1000);
                let _ = self.poller.deregister(listener_fd);
                self.listener_parked_until = Some(self.now_ms() + backoff);
                return;
            }
        }
        loop {
            let accepted = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, peer)) => {
                    self.accept_errors = 0;
                    self.app.on_accept();
                    if self.conns.len() >= self.cfg.max_conns {
                        self.shed(stream);
                        continue;
                    }
                    let t0 = Instant::now();
                    if self.admit(stream, peer).is_err() {
                        // Couldn't make it nonblocking / register: drop it.
                        self.app.on_conn_close();
                    } else {
                        self.app.on_phase(Phase::Accept, t0.elapsed().as_micros() as u64);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient resource errors (EMFILE & friends): back the
                    // listener off exponentially instead of spinning hot.
                    self.app.on_accept_error(&e);
                    self.accept_errors = self.accept_errors.saturating_add(1);
                    let backoff = 5u64.saturating_mul(1 << self.accept_errors.min(8)).min(1000);
                    let _ = self.poller.deregister(listener_fd);
                    self.listener_parked_until = Some(self.now_ms() + backoff);
                    break;
                }
            }
        }
    }

    /// One connection delivered by a multishot-accept completion: the
    /// kernel already accepted it, so the fd is in hand before the gate
    /// runs. Gate semantics mirror [`Loop::accept_ready`] for everything
    /// *after* this connection — `Pause` parks the listener but still
    /// admits the stream we hold (its bytes are already ours), `FailFd`
    /// drops it and backs off exactly like a real `EMFILE`.
    fn accept_incoming(&mut self, fd: std::os::fd::RawFd) {
        use std::os::fd::FromRawFd;
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        match self.app.accept_gate() {
            AcceptGate::Proceed => {
                self.accept_errors = 0;
            }
            AcceptGate::Pause => {
                if let Some(lfd) = self.listener.as_ref().map(|l| l.as_raw_fd()) {
                    let _ = self.poller.deregister(lfd);
                    self.listener_parked_until = Some(self.now_ms() + 20);
                }
            }
            AcceptGate::FailFd => {
                let e = io::Error::from_raw_os_error(24);
                self.app.on_accept_error(&e);
                self.accept_errors = self.accept_errors.saturating_add(1);
                let backoff = 5u64.saturating_mul(1 << self.accept_errors.min(8)).min(1000);
                if let Some(lfd) = self.listener.as_ref().map(|l| l.as_raw_fd()) {
                    let _ = self.poller.deregister(lfd);
                    self.listener_parked_until = Some(self.now_ms() + backoff);
                }
                return; // stream drops: refused, as an fd-starved accept would
            }
        }
        self.app.on_accept();
        if self.conns.len() >= self.cfg.max_conns {
            self.shed(stream);
            return;
        }
        let peer =
            stream.peer_addr().unwrap_or_else(|_| SocketAddr::from(([0, 0, 0, 0], 0)));
        let t0 = Instant::now();
        if self.admit(stream, peer).is_err() {
            self.app.on_conn_close();
        } else {
            self.app.on_phase(Phase::Accept, t0.elapsed().as_micros() as u64);
        }
    }

    /// Refuse a connection with 503 (best effort) and drop it.
    fn shed(&mut self, stream: TcpStream) {
        self.app.on_shed();
        let mut resp = Response::error(StatusCode::ServiceUnavailable);
        resp.headers.set("Retry-After", self.app.retry_after_secs().to_string());
        resp.headers.set("Connection", "close");
        let wire = resp.to_bytes(false);
        let _ = stream.set_nonblocking(true);
        let mut s = stream;
        let _ = s.write(&wire); // small; fits the socket buffer or is lost
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let deadline_ms = self.now_ms() + self.cfg.read_timeout.as_millis() as u64;
        let conn = Conn {
            stream,
            peer: peer.ip().to_string(),
            state: ConnState::Reading,
            carry: Vec::new(),
            out_head: Vec::new(),
            out_body: Bytes::new(),
            out_pos: 0,
            out_file: None,
            out_planned: 0,
            keep_alive: false,
            rounds: 0,
            deadline_ms,
            interest: Interest::READ,
            req_started: None,
            write_started: None,
            budget_deadline_ms: None,
            uring_write: false,
            pending_read: false,
        };
        let (idx, gen) = self.conns.insert(conn);
        let fd = self.conns.get_mut(idx).unwrap().stream.as_raw_fd();
        if let Err(e) = self.poller.register(fd, TOKEN_BASE + idx, Interest::READ) {
            self.conns.remove(idx);
            return Err(e);
        }
        self.wheel.schedule(TimerEntry { token: idx, gen, deadline_ms });
        self.app.on_conn_open();
        Ok(())
    }

    // -------------------------------------------------------- I/O events

    fn conn_event(&mut self, idx: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(idx) else { return };
        match conn.state {
            ConnState::Reading | ConnState::ReadingBody { .. } => {
                if ev.error {
                    self.close(idx);
                } else if ev.readable {
                    self.on_readable(idx);
                }
            }
            ConnState::Writing => {
                if ev.error {
                    self.close(idx);
                } else if let Some(n) = ev.wrote {
                    // Completion from a queued uring WRITEV.
                    self.uring_wrote(idx, n);
                } else if conn.uring_write {
                    // The linked read-poll fired while the write is still
                    // in flight (pipelined client): remember the edge, the
                    // write completion will service it.
                    if ev.readable {
                        conn.pending_read = true;
                    }
                } else if ev.writable || ev.readable {
                    // `readable` here is HUP leaking through: the write
                    // will surface the broken pipe.
                    self.on_writable(idx);
                }
            }
            ConnState::Dispatched => {
                // Interest is NONE; only errors/hangups arrive. The worker
                // holds a generation-checked key, so closing now is safe.
                if ev.error || ev.readable {
                    self.close(idx);
                }
            }
        }
    }

    fn on_readable(&mut self, idx: usize) {
        let mut chunk = [0u8; 4096];
        loop {
            let Some(conn) = self.conns.get_mut(idx) else { return };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    let first_byte = conn.req_started.is_none();
                    if first_byte {
                        conn.req_started = Some(Instant::now());
                    }
                    conn.carry.extend_from_slice(&chunk[..n]);
                    if first_byte {
                        self.arm_parse_deadline(idx);
                    }
                    if !self.progress(idx) {
                        return; // state advanced away from reading
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// A request's first byte arrived: from here the whole head must
    /// parse within the parse budget (the deadline ladder's 25% cutoff,
    /// never looser than the read timeout). The deadline is *absolute* —
    /// later trickled bytes never push it out — so a slowloris client
    /// dribbling one header byte per tick is evicted on schedule instead
    /// of resetting the clock with every byte.
    fn arm_parse_deadline(&mut self, idx: usize) {
        let Some(gen) = self.conns.gen_of(idx) else { return };
        let parse_ms = (self.cfg.request_budget.as_millis() as u64 / 4)
            .min(self.cfg.read_timeout.as_millis() as u64)
            .max(1);
        let deadline_ms = self.now_ms() + parse_ms;
        let Some(conn) = self.conns.get_mut(idx) else { return };
        if deadline_ms >= conn.deadline_ms {
            return; // the idle-read deadline is already at least as tight
        }
        conn.deadline_ms = deadline_ms;
        self.wheel.schedule(TimerEntry { token: idx, gen, deadline_ms });
    }

    /// Try to advance a Reading/ReadingBody connection using buffered
    /// bytes only. Returns true while the connection still wants reads.
    fn progress(&mut self, idx: usize) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(idx) else { return false };
            match &conn.state {
                ConnState::Reading => match try_parse_request(&conn.carry) {
                    Ok(None) => return true,
                    Ok(Some((req, used))) => {
                        conn.carry.drain(..used);
                        let need = match body_length(&req) {
                            Ok(n) => n,
                            Err(()) => {
                                self.bad_request(idx);
                                return false;
                            }
                        };
                        if conn.carry.len() >= need {
                            let body: Vec<u8> = conn.carry.drain(..need).collect();
                            self.dispatch(idx, req, body);
                            return false;
                        }
                        conn.state = ConnState::ReadingBody { req: Box::new(req), need };
                        // Loop again: maybe the body is already here (it
                        // isn't — we just checked — so this returns true).
                    }
                    Err(_malformed) => {
                        self.bad_request(idx);
                        return false;
                    }
                },
                ConnState::ReadingBody { need, .. } => {
                    let need = *need;
                    if conn.carry.len() < need {
                        return true;
                    }
                    let body: Vec<u8> = conn.carry.drain(..need).collect();
                    let ConnState::ReadingBody { req, .. } =
                        std::mem::replace(&mut conn.state, ConnState::Reading)
                    else {
                        unreachable!()
                    };
                    self.dispatch(idx, *req, body);
                    return false;
                }
                _ => return false,
            }
        }
    }

    // ----------------------------------------------------- request lifecycle

    fn dispatch(&mut self, idx: usize, req: Request, body: Vec<u8>) {
        let Some(gen) = self.conns.gen_of(idx) else { return };
        let loop_now_ms = self.now_ms();
        let Some(conn) = self.conns.get_mut(idx) else { return };
        // Pipelined requests whose bytes were already buffered (dispatch
        // straight out of write_done) have no first-byte mark: count 0.
        let started = conn.req_started.take();
        let parse_us = started.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0);
        let deadline =
            RequestDeadline::new(started.unwrap_or_else(Instant::now), self.cfg.request_budget);
        conn.rounds += 1;
        let client_keep = req
            .headers
            .get("connection")
            .map(|v| v.eq_ignore_ascii_case("keep-alive"))
            .unwrap_or(false);
        let keep_alive = client_keep && conn.rounds < self.cfg.keepalive_limit;
        let head_only = req.method == Method::Head;
        conn.state = ConnState::Dispatched;
        // Clamp this request's eviction to its budget: whatever else
        // happens, the connection is resolved by the budget's end.
        conn.budget_deadline_ms =
            Some(loop_now_ms + deadline.remaining().as_millis() as u64);
        // The head parsed: the slowloris parse deadline has done its job.
        // Push eviction back out so a slow *fulfillment* (worker queue,
        // stalled disk) isn't evicted on the parse clock; queue_write
        // re-arms the write deadline when the response is ready.
        let evict_ms = loop_now_ms + self.cfg.read_timeout.as_millis() as u64;
        if conn.deadline_ms < evict_ms {
            conn.deadline_ms = evict_ms;
            self.wheel.schedule(TimerEntry { token: idx, gen, deadline_ms: evict_ms });
        }
        self.set_interest(idx, Interest::NONE);
        self.app.on_phase(Phase::Parse, parse_us);
        if deadline.overrun(Phase::Parse) {
            // A trickled head already ate most of the budget: refuse the
            // work before paying for fulfillment.
            self.app.on_deadline_overrun();
            let resp = overloaded_response(self.app.retry_after_secs());
            let (head, body) = resp.to_wire_parts(false);
            self.start_write(idx, head, body, None, false);
            return;
        }
        // The worker may outlive this request's relevance (evicted client);
        // the generation check on completion makes that harmless.
        let app = Arc::clone(&self.app);
        let completions = Arc::clone(&self.completions);
        let wakeup = Arc::clone(&self.wakeup_tx);
        let peer = self.conns.get_mut(idx).map(|c| c.peer.clone()).unwrap_or_default();
        let token = idx;
        let transmit = self.cfg.transmit;
        let sendfile_ok = self.cfg.use_sendfile && sys::HAS_SENDFILE;
        // When the backend can SEND_ZC, moderate files are worth
        // materializing: the body then rides the ring as one zero-copy
        // op instead of a per-chunk sendfile loop on the loop thread.
        let zc_file_ok = self.poller.supports_send_zc();
        let enqueued = Instant::now();
        let job = Box::new(move || {
            // Queue wait is the admission controller's signal: the time
            // between submission and this line is pure sojourn — the
            // request did nothing but stand in line.
            app.on_queue_sojourn(enqueued.elapsed().as_micros() as u64);
            // Budget checks bracket fulfillment: skip the work entirely if
            // the fetch checkpoint already passed (queueing delay), and
            // replace a too-late response with a definite 503 — under
            // injected slow-disk both engines then fail identically.
            let mut overrun = deadline.overrun(Phase::Fetch);
            let reply = if overrun {
                Reply::from(overloaded_response(app.retry_after_secs()))
            } else {
                let r = app.respond(&peer, &req, &body);
                overrun = deadline.overrun(Phase::Fetch);
                if overrun {
                    Reply::from(overloaded_response(app.retry_after_secs()))
                } else {
                    r
                }
            };
            if overrun {
                app.on_deadline_overrun();
            }
            let mut resp = reply.response;
            let mut keep_alive = keep_alive && !overrun;
            if keep_alive {
                resp.headers.set("Connection", "Keep-Alive");
            }
            let mut file_tx: Option<FileTx> = None;
            if let Some(fb) = reply.file {
                resp.headers.set("Content-Length", fb.len.to_string());
                if head_only {
                    // Header describes the file; nothing follows.
                } else if sendfile_ok && !(zc_file_ok && fb.len <= ZC_FILE_MAX) {
                    file_tx = Some(FileTx { file: fb.file, offset: 0, end: fb.len });
                } else {
                    // Materialize here, on the worker thread, so the
                    // blocking read stays off the loop: either the
                    // platform lacks sendfile, or SEND_ZC is available
                    // and a bounded in-memory body rides the ring as
                    // one zero-copy op instead of a sendfile loop.
                    let mut buf = Vec::with_capacity(fb.len as usize);
                    let mut f = fb.file;
                    match Read::by_ref(&mut f).take(fb.len).read_to_end(&mut buf) {
                        Ok(n) if n as u64 == fb.len => resp.body = buf.into(),
                        _ => {
                            // Short read (truncated underneath us) or I/O
                            // error: better a clean 500 than a wrong body.
                            resp = Response::error(StatusCode::InternalServerError);
                            resp.headers.set("Connection", "close");
                            keep_alive = false;
                        }
                    }
                }
            }
            let (head, wire_body) = match transmit {
                TransmitMode::ZeroCopy => resp.to_wire_parts(head_only),
                TransmitMode::Copy => (resp.to_bytes(head_only), Bytes::new()),
            };
            let done = Completion { token, gen, head, body: wire_body, file: file_tx, keep_alive };
            match completions.lock() {
                Ok(mut q) => q.push(done),
                Err(poisoned) => poisoned.into_inner().push(done),
            }
            let _ = wakeup.send(&[1]);
        });
        if let Err(_job) = self.pool.try_submit(job) {
            // Every worker busy and the queue full: shed at the request
            // level rather than queue unboundedly.
            self.app.on_shed();
            let resp = overloaded_response(self.app.retry_after_secs());
            let (head, body) = resp.to_wire_parts(false);
            self.start_write(idx, head, body, None, false);
        }
    }

    fn bad_request(&mut self, idx: usize) {
        self.app.on_bad_request();
        let resp = Response::error(StatusCode::BadRequest);
        let (head, body) = resp.to_wire_parts(false);
        self.start_write(idx, head, body, None, false);
    }

    fn drain_wakeup(&mut self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = self.wakeup_rx.recv(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }

    /// Admit streams dealt to this shard by the fallback acceptor. The
    /// acceptor already counted the accept (`on_accept`); this mirrors the
    /// cap-check / admit / close accounting of [`Loop::accept_ready`].
    fn drain_handoff(&mut self) {
        if self.handoff.is_none() {
            return;
        }
        loop {
            let next = {
                let q = self.handoff.as_ref().unwrap();
                let mut q = match q.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                q.pop_front()
            };
            let Some(stream) = next else { return };
            if self.conns.len() >= self.cfg.max_conns {
                self.shed(stream);
                continue;
            }
            let peer = stream
                .peer_addr()
                .unwrap_or_else(|_| SocketAddr::from(([0, 0, 0, 0], 0)));
            let t0 = Instant::now();
            if self.admit(stream, peer).is_err() {
                self.app.on_conn_close();
            } else {
                self.app.on_phase(Phase::Accept, t0.elapsed().as_micros() as u64);
            }
        }
    }

    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut q = match self.completions.lock() {
                Ok(q) => q,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *q)
        };
        for c in done {
            if self.conns.get_mut_checked(c.token, c.gen).is_none() {
                continue; // connection died while the worker ran
            }
            let Some(conn) = self.conns.get_mut(c.token) else { continue };
            if !matches!(conn.state, ConnState::Dispatched) {
                continue;
            }
            self.start_write(c.token, c.head, c.body, c.file, c.keep_alive);
        }
    }

    fn start_write(
        &mut self,
        idx: usize,
        head: Vec<u8>,
        body: Bytes,
        file: Option<FileTx>,
        keep_alive: bool,
    ) {
        let Some(gen) = self.conns.gen_of(idx) else { return };
        let mut deadline_ms = self.now_ms() + self.cfg.write_timeout.as_millis() as u64;
        if let Some(budget) = self.conns.get_mut(idx).and_then(|c| c.budget_deadline_ms) {
            deadline_ms = deadline_ms.min(budget);
        }
        let file_len = file.as_ref().map(|f| (f.end - f.offset) as usize).unwrap_or(0);
        let planned = head.len() + body.len() + file_len;
        {
            let Some(conn) = self.conns.get_mut(idx) else { return };
            self.app.on_write_start(planned);
            if !body.is_empty() {
                self.app.on_zero_copy(body.len());
            }
            if file.is_some() {
                self.app.on_sendfile(file_len);
            }
            conn.out_head = head;
            conn.out_body = body;
            conn.out_pos = 0;
            conn.out_file = file;
            conn.out_planned = planned;
            conn.keep_alive = keep_alive;
            conn.state = ConnState::Writing;
            conn.deadline_ms = deadline_ms;
            conn.write_started = Some(Instant::now());
            conn.uring_write = false;
            conn.pending_read = false;
        }
        self.wheel.schedule(TimerEntry { token: idx, gen, deadline_ms });

        // Completion-based fast path: hand the whole buffered response to
        // the ring as a queued WRITEV, with the next-request read-poll
        // linked behind it on keep-alive connections — the kernel chains
        // both without the loop re-entering in between. File payloads keep
        // the classic sendfile path. On refusal (fd not registered, poll
        // still armed) the buffers are left in place and the readiness
        // path below takes over.
        if self.poller.supports_queued_write() {
            let Some(conn) = self.conns.get_mut(idx) else { return };
            if conn.out_file.is_none() && conn.out_planned > 0 {
                let fd = conn.stream.as_raw_fd();
                let keep = conn.keep_alive;
                let (head, body) = (&mut conn.out_head, &mut conn.out_body);
                if self.poller.queue_writev(fd, TOKEN_BASE + idx, head, body, keep) {
                    conn.uring_write = true;
                    return;
                }
            }
        }

        // Optimistic write: most responses fit the socket buffer, saving a
        // poll round-trip. Falls back to WRITE interest if it blocks.
        self.on_writable(idx);
    }

    /// Progress report from a queued uring write: `n` bytes hit the wire
    /// (or a negative errno). The poller resubmits partial writes itself;
    /// this just advances accounting and finishes when the plan is met.
    fn uring_wrote(&mut self, idx: usize, n: i32) {
        if n <= 0 {
            self.write_done(idx, false);
            return;
        }
        let done = {
            let Some(conn) = self.conns.get_mut(idx) else { return };
            conn.out_pos += n as usize;
            conn.out_pos >= conn.out_planned
        };
        if done {
            self.write_done(idx, true);
        } else {
            self.refresh_write_deadline(idx);
        }
    }

    fn on_writable(&mut self, idx: usize) {
        enum Step {
            Progress,
            Retry,
            Block,
            Fail,
            Done,
        }
        let mut progressed = false;
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(idx) else { return };
                let head_len = conn.out_head.len();
                let buf_total = head_len + conn.out_body.len();
                if conn.out_pos < buf_total {
                    // Buffered part: head ‖ body gathered in one syscall.
                    let fd = conn.stream.as_raw_fd();
                    let (a, b): (&[u8], &[u8]) = if conn.out_pos < head_len {
                        (&conn.out_head[conn.out_pos..], &conn.out_body)
                    } else {
                        (&[], &conn.out_body[conn.out_pos - head_len..])
                    };
                    let res = if self.cfg.use_writev {
                        sys::write_two(fd, a, b)
                    } else {
                        sys::write_two_seq(fd, a, b)
                    };
                    match res {
                        Ok(0) => Step::Fail,
                        Ok(n) => {
                            conn.out_pos += n;
                            Step::Progress
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Step::Block,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => Step::Retry,
                        Err(_) => Step::Fail,
                    }
                } else if let Some(ft) = conn.out_file.as_mut() {
                    if ft.offset >= ft.end {
                        Step::Done
                    } else {
                        // File part: stream in-kernel, ≤1 MiB per call so
                        // one huge transfer can't monopolize the loop.
                        let out_fd = conn.stream.as_raw_fd();
                        let in_fd = ft.file.as_raw_fd();
                        let want = (ft.end - ft.offset).min(1u64 << 20) as usize;
                        match sys::send_file(out_fd, in_fd, &mut ft.offset, want) {
                            // EOF before the advertised length: the file
                            // was truncated underneath us; the client sees
                            // a short body, which closing makes explicit.
                            Ok(0) => Step::Fail,
                            Ok(_) => Step::Progress,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Step::Block,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => Step::Retry,
                            Err(_) => Step::Fail,
                        }
                    }
                } else {
                    Step::Done
                }
            };
            match step {
                Step::Progress => progressed = true,
                Step::Retry => {}
                Step::Block => {
                    // The socket buffer is full but the client is making
                    // progress: push the eviction deadline out so a slow—
                    // but live—reader of a large file isn't killed mid-body.
                    if progressed {
                        self.refresh_write_deadline(idx);
                    }
                    self.set_interest(idx, Interest::WRITE);
                    return;
                }
                Step::Fail => {
                    self.write_done(idx, false);
                    return;
                }
                Step::Done => {
                    self.write_done(idx, true);
                    return;
                }
            }
        }
    }

    /// Re-arm the write deadline after transmit progress. The old wheel
    /// entry goes stale (deadline mismatch) and is ignored on expiry.
    fn refresh_write_deadline(&mut self, idx: usize) {
        let Some(gen) = self.conns.gen_of(idx) else { return };
        let mut deadline_ms = self.now_ms() + self.cfg.write_timeout.as_millis() as u64;
        let Some(conn) = self.conns.get_mut(idx) else { return };
        if let Some(budget) = conn.budget_deadline_ms {
            // Progress keeps the client alive, but never past the budget.
            deadline_ms = deadline_ms.min(budget);
        }
        if conn.deadline_ms == deadline_ms {
            return;
        }
        conn.deadline_ms = deadline_ms;
        self.wheel.schedule(TimerEntry { token: idx, gen, deadline_ms });
    }

    /// A write finished (fully, or by error). Account it, then either
    /// recycle the connection for keep-alive or close it.
    fn write_done(&mut self, idx: usize, ok: bool) {
        let Some(gen) = self.conns.gen_of(idx) else { return };
        let (keep, written, write_us, pending_read) = {
            let Some(conn) = self.conns.get_mut(idx) else { return };
            let written = conn.out_planned;
            conn.out_head = Vec::new();
            conn.out_body = Bytes::new();
            conn.out_pos = 0;
            conn.out_file = None;
            conn.out_planned = 0;
            conn.budget_deadline_ms = None;
            conn.uring_write = false;
            let pending_read = std::mem::take(&mut conn.pending_read);
            let write_us = conn
                .write_started
                .take()
                .map(|t| t.elapsed().as_micros() as u64)
                .unwrap_or(0);
            (conn.keep_alive, written, write_us, pending_read)
        };
        self.app.on_write_end(written);
        if ok {
            self.app.on_phase(Phase::Write, write_us);
        }
        if !ok || !keep {
            self.close(idx);
            return;
        }
        let deadline_ms = self.now_ms() + self.cfg.read_timeout.as_millis() as u64;
        {
            let Some(conn) = self.conns.get_mut(idx) else { return };
            conn.state = ConnState::Reading;
            conn.deadline_ms = deadline_ms;
        }
        self.wheel.schedule(TimerEntry { token: idx, gen, deadline_ms });
        self.set_interest(idx, Interest::READ);
        // Pipelined bytes may already complete the next request; under a
        // queued write, a readable edge consumed mid-write (the linked
        // poll completing early) must also be serviced now — its event is
        // spent and won't be re-delivered.
        if self.progress(idx) && pending_read {
            self.on_readable(idx);
        }
    }

    // ------------------------------------------------------------ plumbing

    fn set_interest(&mut self, idx: usize, interest: Interest) {
        let Some(conn) = self.conns.get_mut(idx) else { return };
        if conn.interest == interest {
            return;
        }
        conn.interest = interest;
        let fd = conn.stream.as_raw_fd();
        if self.poller.modify(fd, TOKEN_BASE + idx, interest).is_err() {
            self.close(idx);
        }
    }

    fn expire(&mut self, e: TimerEntry) {
        let Some(conn) = self.conns.get_mut_checked(e.token, e.gen) else {
            return; // stale: connection already gone or recycled
        };
        if conn.deadline_ms != e.deadline_ms {
            return; // stale: the deadline moved since this was scheduled
        }
        self.app.on_evict();
        self.close(e.token);
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.conns.remove(idx) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.app.on_conn_close();
            // conn.stream drops here, closing the fd.
        }
    }
}

/// The definite answer for a request that missed a deadline checkpoint
/// or was refused by admission: 503 with a (load-derived) `Retry-After`,
/// closing the connection.
fn overloaded_response(retry_after_secs: u64) -> Response {
    let mut resp = Response::error(StatusCode::ServiceUnavailable);
    resp.headers.set("Retry-After", retry_after_secs.to_string());
    resp.headers.set("Connection", "close");
    resp
}

/// Expected body length for a parsed request head; `Err` means the head
/// is unserviceable (POST without/with oversized `Content-Length`).
fn body_length(req: &Request) -> Result<usize, ()> {
    if req.method != Method::Post {
        return Ok(0);
    }
    let len = req.headers.content_length().ok_or(())?;
    if len > MAX_BODY_BYTES {
        return Err(());
    }
    Ok(len as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_length_rules() {
        let parse = |raw: &[u8]| try_parse_request(raw).unwrap().unwrap().0;
        let get = parse(b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(body_length(&get), Ok(0));
        let post = parse(b"POST /cgi HTTP/1.0\r\nContent-Length: 12\r\n\r\n");
        assert_eq!(body_length(&post), Ok(12));
        let no_len = parse(b"POST /cgi HTTP/1.0\r\n\r\n");
        assert_eq!(body_length(&no_len), Err(()));
        let huge = parse(b"POST /cgi HTTP/1.0\r\nContent-Length: 99999999\r\n\r\n");
        assert_eq!(body_length(&huge), Err(()));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ReactorConfig::default();
        assert!(cfg.max_conns > 0 && cfg.workers > 0 && cfg.keepalive_limit > 1);
        assert!(cfg.timer_tick_ms > 0 && cfg.timer_slots > 1);
    }
}
