//! # sweb — facade crate
//!
//! Re-exports the whole SWEB workspace behind one dependency. See the
//! individual crates for details:
//!
//! * [`des`] — discrete-event simulation engine
//! * [`cluster`] — multicomputer hardware models and presets
//! * [`http`] — HTTP/1.0 subset shared by simulator and live server
//! * [`core`] — the SWEB scheduler (broker, oracle, loadd, cost model)
//! * [`workload`] — request/file/client generators
//! * [`metrics`] — histograms, run statistics, table rendering
//! * [`sim`] — the full cluster simulator and paper experiments
//! * [`server`] — a real multi-threaded TCP implementation on localhost

pub use sweb_cluster as cluster;
pub use sweb_core as core;
pub use sweb_des as des;
pub use sweb_http as http;
pub use sweb_metrics as metrics;
pub use sweb_server as server;
pub use sweb_sim as sim;
pub use sweb_workload as workload;
